package cudasim

import (
	"fmt"
	"sync"
)

// Ctx is a thread's view of the device during a kernel: its position in
// the launch geometry, its cycle accounting, and access to the block's
// shared memory, the device's constant memory, and the barrier.
//
// A Ctx is owned by exactly one simulated thread and must not escape the
// kernel invocation.
type Ctx struct {
	dev   *Device
	block *blockState

	// BlockIdx, ThreadIdx, BlockDim and GridDim mirror the CUDA built-in
	// variables of the same names.
	BlockIdx  Dim3
	ThreadIdx Dim3
	BlockDim  Dim3
	GridDim   Dim3

	computeCycles uint64
	memCycles     uint64
	counts        counters
}

// blockState is the per-block cooperative state: the __syncthreads
// barrier and the shared-memory slot registry.
type blockState struct {
	barrier *barrier
	mu      sync.Mutex
	shared  [][]int64
	sharedF [][]float64
}

// GlobalThreadID returns the flattened unique thread index across the
// whole grid, the conventional ensemble-member index of the paper's
// parallel metaheuristics.
func (c *Ctx) GlobalThreadID() int {
	return c.GridDim.Linear(c.BlockIdx)*c.BlockDim.Count() + c.BlockDim.Linear(c.ThreadIdx)
}

// ThreadInBlock returns the flattened thread index within its block.
func (c *Ctx) ThreadInBlock() int { return c.BlockDim.Linear(c.ThreadIdx) }

// WarpID returns the index of the thread's warp within its block; LaneID
// returns its lane within the warp.
func (c *Ctx) WarpID() int { return c.ThreadInBlock() / c.dev.spec.WarpSize }

// LaneID returns the thread's position within its warp.
func (c *Ctx) LaneID() int { return c.ThreadInBlock() % c.dev.spec.WarpSize }

// SyncThreads is the __syncthreads barrier: every thread of the block must
// arrive before any proceeds. It panics on non-cooperative launches, where
// threads run sequentially and a barrier would deadlock silently instead
// of failing loudly.
func (c *Ctx) SyncThreads() {
	if c.block.barrier == nil {
		panic("cudasim: SyncThreads in a non-cooperative launch (set LaunchConfig.Cooperative)")
	}
	c.chargeCompute(CyclesArith)
	c.block.barrier.await()
}

// ChargeArith adds n arithmetic instructions to the thread's compute time.
// Device code calls it to account work done in plain Go between memory
// accesses (e.g. the O(n) fitness evaluation loop).
func (c *Ctx) ChargeArith(n int) {
	c.computeCycles += uint64(n) * CyclesArith
}

// ChargeGlobal accounts n global-memory accesses; coalesced accesses model
// neighbouring threads hitting consecutive addresses.
func (c *Ctx) ChargeGlobal(n int, coalesced bool) {
	if coalesced {
		c.memCycles += uint64(n) * CyclesGlobalCoalesced
	} else {
		c.memCycles += uint64(n) * CyclesGlobalScattered
	}
	c.counts.globalAccesses += uint64(n)
}

// ChargeShared accounts n shared-memory accesses.
func (c *Ctx) ChargeShared(n int) {
	c.memCycles += uint64(n) * CyclesShared
	c.counts.sharedAccesses += uint64(n)
}

func (c *Ctx) chargeCompute(cycles uint64) { c.computeCycles += cycles }

// ConstInt reads a value from simulated constant memory. Constant reads
// are broadcast and effectively register-speed, which is why the paper
// stores d and n there.
func (c *Ctx) ConstInt(name string) int64 {
	c.computeCycles += CyclesConstant
	c.counts.constReads++
	c.dev.mu.Lock()
	v, ok := c.dev.constantI[name]
	c.dev.mu.Unlock()
	if !ok {
		panic("cudasim: constant memory symbol not set: " + name)
	}
	return v
}

// ConstFloat reads a float from simulated constant memory.
func (c *Ctx) ConstFloat(name string) float64 {
	c.computeCycles += CyclesConstant
	c.counts.constReads++
	c.dev.mu.Lock()
	v, ok := c.dev.constantF[name]
	c.dev.mu.Unlock()
	if !ok {
		panic("cudasim: constant memory symbol not set: " + name)
	}
	return v
}

// SharedInt64 returns the block's shared int64 array for the given slot,
// allocating it on first use. All threads of a block receive the same
// backing array; distinct slots are distinct arrays. Accesses through the
// returned slice are raw — account them with ChargeShared, and order
// cross-thread use with SyncThreads, exactly as on real hardware.
func (c *Ctx) SharedInt64(slot, size int) []int64 {
	b := c.block
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.shared) <= slot {
		b.shared = append(b.shared, nil)
	}
	if b.shared[slot] == nil {
		b.shared[slot] = make([]int64, size)
	} else if len(b.shared[slot]) != size {
		panic("cudasim: shared slot reallocated with a different size")
	}
	return b.shared[slot]
}

// SharedFloat64 is SharedInt64 for float64 arrays.
func (c *Ctx) SharedFloat64(slot, size int) []float64 {
	b := c.block
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.sharedF) <= slot {
		b.sharedF = append(b.sharedF, nil)
	}
	if b.sharedF[slot] == nil {
		b.sharedF[slot] = make([]float64, size)
	} else if len(b.sharedF[slot]) != size {
		panic("cudasim: shared slot reallocated with a different size")
	}
	return b.sharedF[slot]
}

// barrier is a reusable counting barrier for one block's threads.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	count  int
	phase  uint64
	broken bool
}

// errBarrierBroken unwinds threads parked at a barrier after a sibling
// thread panicked; the block runner filters it out so only the original
// panic propagates.
var errBarrierBroken = fmt.Errorf("cudasim: block aborted, barrier broken")

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all threads of the block have arrived, or panics with
// errBarrierBroken if the block was aborted.
func (b *barrier) await() {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		panic(errBarrierBroken)
	}
	phase := b.phase
	b.count++
	if b.count == b.size {
		b.count = 0
		b.phase++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for b.phase == phase && !b.broken {
		b.cond.Wait()
	}
	broken := b.broken
	b.mu.Unlock()
	if broken {
		panic(errBarrierBroken)
	}
}

// breakAll aborts the barrier, waking every parked thread with a panic.
func (b *barrier) breakAll() {
	b.mu.Lock()
	b.broken = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
