package cudasim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// counters are the per-thread event tallies folded up into kernel stats.
type counters struct {
	globalAccesses uint64
	sharedAccesses uint64
	constReads     uint64
	atomics        uint64
	texFetches     uint64
	texMisses      uint64
}

func (a *counters) add(b *counters) {
	a.globalAccesses += b.globalAccesses
	a.sharedAccesses += b.sharedAccesses
	a.constReads += b.constReads
	a.atomics += b.atomics
	a.texFetches += b.texFetches
	a.texMisses += b.texMisses
}

// KernelStats aggregates all launches of one kernel name.
type KernelStats struct {
	Launches       int
	Blocks         int
	Threads        int
	ComputeCycles  uint64
	MemoryCycles   uint64
	GlobalAccesses uint64
	SharedAccesses uint64
	ConstReads     uint64
	Atomics        uint64
	TexFetches     uint64
	TexMisses      uint64
	SimSeconds     float64
}

// TransferStats aggregates host↔device copies in one direction.
type TransferStats struct {
	Count      int
	Bytes      int64
	SimSeconds float64
}

// Profiler plays the role of the Nvidia CUDA profiler the paper used to
// tune performance and memory usage: it tallies, per kernel, the launch
// count, cycle classes, and memory traffic, plus PCIe transfer volume.
type Profiler struct {
	mu       sync.Mutex
	kernels  map[string]*KernelStats
	h2d, d2h TransferStats
}

func newProfiler() *Profiler {
	return &Profiler{kernels: make(map[string]*KernelStats)}
}

func (p *Profiler) recordKernel(cfg LaunchConfig, blocks []blockCost, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ks := p.kernels[cfg.Name]
	if ks == nil {
		ks = &KernelStats{}
		p.kernels[cfg.Name] = ks
	}
	ks.Launches++
	ks.Blocks += len(blocks)
	ks.Threads += len(blocks) * cfg.Block.Count()
	for _, bc := range blocks {
		ks.ComputeCycles += bc.compute
		ks.MemoryCycles += bc.memory
		ks.GlobalAccesses += bc.counters.globalAccesses
		ks.SharedAccesses += bc.counters.sharedAccesses
		ks.ConstReads += bc.counters.constReads
		ks.Atomics += bc.counters.atomics
		ks.TexFetches += bc.counters.texFetches
		ks.TexMisses += bc.counters.texMisses
	}
	ks.SimSeconds += seconds
}

func (p *Profiler) recordTransfer(bytes int, seconds float64, toDevice bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := &p.d2h
	if toDevice {
		t = &p.h2d
	}
	t.Count++
	t.Bytes += int64(bytes)
	t.SimSeconds += seconds
}

// Kernel returns a copy of the stats for one kernel name (zero value if
// never launched).
func (p *Profiler) Kernel(name string) KernelStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ks := p.kernels[name]; ks != nil {
		return *ks
	}
	return KernelStats{}
}

// Kernels returns a copy of every kernel's stats, keyed by kernel name —
// the exportable form of the profile that Report renders (used by the
// gpuprof JSON emitter).
func (p *Profiler) Kernels() map[string]KernelStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]KernelStats, len(p.kernels))
	for name, ks := range p.kernels {
		out[name] = *ks
	}
	return out
}

// Transfers returns copies of the host-to-device and device-to-host
// transfer stats.
func (p *Profiler) Transfers() (h2d, d2h TransferStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.h2d, p.d2h
}

// Reset clears all statistics.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.kernels = make(map[string]*KernelStats)
	p.h2d, p.d2h = TransferStats{}, TransferStats{}
}

// Report renders a human-readable profile, one row per kernel plus the
// transfer summary — the simulator's answer to `nvprof`.
func (p *Profiler) Report() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.kernels))
	for name := range p.kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %10s %12s %12s %10s %8s %10s\n",
		"kernel", "launches", "threads", "sim ms", "compute cyc", "memory cyc", "global", "shared", "atomics")
	for _, name := range names {
		ks := p.kernels[name]
		fmt.Fprintf(&b, "%-12s %8d %8d %10.3f %12d %12d %10d %8d %10d\n",
			name, ks.Launches, ks.Threads, ks.SimSeconds*1e3,
			ks.ComputeCycles, ks.MemoryCycles,
			ks.GlobalAccesses, ks.SharedAccesses, ks.Atomics)
	}
	fmt.Fprintf(&b, "H2D: %d copies, %d bytes, %.3f ms\n", p.h2d.Count, p.h2d.Bytes, p.h2d.SimSeconds*1e3)
	fmt.Fprintf(&b, "D2H: %d copies, %d bytes, %.3f ms\n", p.d2h.Count, p.d2h.Bytes, p.d2h.SimSeconds*1e3)
	return b.String()
}
