package cudasim

import "fmt"

// Dim3 is a CUDA-style three-dimensional extent or index. The paper uses
// strictly linear configurations (G = (g,1,1), B = (b,1,1)) to avoid
// shared-memory race conditions, but the simulator supports all three
// dimensions.
type Dim3 struct {
	X, Y, Z int
}

// Dim returns a linear (x,1,1) extent, the paper's configuration style.
func Dim(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// Count returns the total number of elements covered by the extent.
func (d Dim3) Count() int { return d.X * d.Y * d.Z }

// Linear returns the flattened index of idx inside extent d
// (x fastest, z slowest — the CUDA convention).
func (d Dim3) Linear(idx Dim3) int {
	return idx.X + d.X*(idx.Y+d.Y*idx.Z)
}

// Valid reports whether the extent is positive in every dimension.
func (d Dim3) Valid() bool { return d.X > 0 && d.Y > 0 && d.Z > 0 }

// String implements fmt.Stringer in CUDA's (x,y,z) notation.
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// unflatten converts a linear index back to a Dim3 index within extent d.
func (d Dim3) unflatten(i int) Dim3 {
	x := i % d.X
	i /= d.X
	y := i % d.Y
	z := i / d.Y
	return Dim3{X: x, Y: y, Z: z}
}
