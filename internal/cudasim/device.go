package cudasim

import (
	"fmt"
	"runtime"
	"sync"
)

// Device is a simulated CUDA device. It owns the constant-memory bank, the
// profiler, and the simulated clock. Buffers are allocated against a
// device with NewBuffer.
//
// Kernel launches execute eagerly on the calling goroutine's control flow
// (blocks fan out over a host worker pool), which preserves the FIFO
// semantics of CUDA's default stream; Synchronize exists for API fidelity
// with the paper's host code and flushes nothing further.
type Device struct {
	spec    DeviceSpec
	workers int

	mu         sync.Mutex
	simTime    float64 // accumulated simulated device seconds
	allocBytes int64   // live device-memory allocations
	constantI  map[string]int64
	constantF  map[string]float64

	prof  *Profiler
	trace *tracer
}

// NewDevice creates a device with the given spec. It panics on an invalid
// spec (device creation is static configuration, not runtime input).
func NewDevice(spec DeviceSpec) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		spec:      spec,
		workers:   runtime.GOMAXPROCS(0),
		constantI: make(map[string]int64),
		constantF: make(map[string]float64),
		prof:      newProfiler(),
	}
}

// Spec returns the device's hardware description.
func (d *Device) Spec() DeviceSpec { return d.spec }

// SimTime returns the simulated device time accumulated so far, in
// seconds: kernel execution per the timing model plus host↔device
// transfers.
func (d *Device) SimTime() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simTime
}

// ResetSimTime zeroes the simulated clock (the profiler is unaffected).
func (d *Device) ResetSimTime() {
	d.mu.Lock()
	d.simTime = 0
	d.mu.Unlock()
}

// Profiler returns the device's profiler.
func (d *Device) Profiler() *Profiler { return d.prof }

// MemoryInUse returns the bytes of live device-buffer allocations.
func (d *Device) MemoryInUse() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocBytes
}

// reserve claims device memory for an allocation, failing when the
// spec's capacity would be exceeded.
func (d *Device) reserve(bytes int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.spec.GlobalMemBytes > 0 && d.allocBytes+bytes > d.spec.GlobalMemBytes {
		return fmt.Errorf("cudasim: out of device memory: %d B in use, %d B requested, %d B capacity",
			d.allocBytes, bytes, d.spec.GlobalMemBytes)
	}
	d.allocBytes += bytes
	return nil
}

// release returns device memory (Buffer.Free).
func (d *Device) release(bytes int64) {
	d.mu.Lock()
	d.allocBytes -= bytes
	d.mu.Unlock()
}

// SetConstantInt stores a value in simulated constant memory, as the paper
// does with the due date d and the job count n to exploit the broadcast
// mechanism.
func (d *Device) SetConstantInt(name string, v int64) {
	d.mu.Lock()
	d.constantI[name] = v
	d.mu.Unlock()
}

// SetConstantFloat stores a float in simulated constant memory.
func (d *Device) SetConstantFloat(name string, v float64) {
	d.mu.Lock()
	d.constantF[name] = v
	d.mu.Unlock()
}

// Synchronize blocks until all queued work completes. Launches execute
// eagerly in this simulator, so this is a memory barrier plus API
// fidelity; host code ported from the paper calls it after the four
// kernel launches of each iteration.
func (d *Device) Synchronize() {}

// Event is a point on the simulated timeline, mirroring cudaEvent_t.
type Event struct{ at float64 }

// Record captures the current simulated time.
func (d *Device) Record() Event { return Event{at: d.SimTime()} }

// ElapsedSeconds returns the simulated seconds between two events.
func (e Event) ElapsedSeconds(later Event) float64 { return later.at - e.at }

// LaunchConfig describes one kernel launch.
type LaunchConfig struct {
	// Name labels the kernel in the profiler ("fitness", "perturb", …).
	Name string
	// Grid and Block are the CUDA launch geometry.
	Grid, Block Dim3
	// RegsPerThread, when positive, limits SM occupancy through register
	// pressure (the trade-off the paper discusses for large blocks).
	RegsPerThread int
	// SharedBytesPerBlock declares the block's shared-memory footprint;
	// launches exceeding the spec's budget fail.
	SharedBytesPerBlock int
	// Cooperative selects goroutine-per-thread execution with a real
	// __syncthreads barrier. Non-cooperative launches run each block's
	// threads sequentially on one goroutine — much faster on the host —
	// and SyncThreads panics (there is nothing to synchronize with).
	Cooperative bool
}

// Kernel is the device function type: one invocation per thread.
type Kernel func(ctx *Ctx)

// Launch validates the configuration and executes the kernel over the
// whole grid. It returns once every thread has finished, with the
// simulated clock advanced per the timing model.
func (d *Device) Launch(cfg LaunchConfig, kernel Kernel) error {
	if !cfg.Grid.Valid() || !cfg.Block.Valid() {
		return fmt.Errorf("cudasim: launch %q with non-positive geometry grid=%v block=%v", cfg.Name, cfg.Grid, cfg.Block)
	}
	if tpb := cfg.Block.Count(); tpb > d.spec.MaxThreadsPerBlock {
		return fmt.Errorf("cudasim: launch %q with %d threads/block exceeds device limit %d", cfg.Name, tpb, d.spec.MaxThreadsPerBlock)
	}
	if cfg.SharedBytesPerBlock > d.spec.SharedMemPerBlock {
		return fmt.Errorf("cudasim: launch %q requests %d B shared memory, device offers %d B", cfg.Name, cfg.SharedBytesPerBlock, d.spec.SharedMemPerBlock)
	}
	if cfg.Name == "" {
		cfg.Name = "kernel"
	}

	numBlocks := cfg.Grid.Count()
	blockCycles := make([]blockCost, numBlocks)

	// Fan blocks out over the host worker pool. Panics in device code are
	// captured and re-raised on the launching goroutine (the analogue of a
	// device-side assert aborting the kernel).
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	sem := make(chan struct{}, d.workers)
	for b := 0; b < numBlocks; b++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(b int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			blockCycles[b] = d.runBlock(cfg, b, kernel)
		}(b)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}

	seconds := d.kernelSeconds(cfg, blockCycles)
	d.mu.Lock()
	startAt := d.simTime
	d.simTime += seconds
	d.mu.Unlock()
	d.prof.recordKernel(cfg, blockCycles, seconds)
	d.recordTraceEvent(cfg.Name, "kernel", startAt, seconds, 0)
	return nil
}

// MustLaunch is Launch for statically correct configurations; it panics on
// error.
func (d *Device) MustLaunch(cfg LaunchConfig, kernel Kernel) {
	if err := d.Launch(cfg, kernel); err != nil {
		panic(err)
	}
}

// runBlock executes one block and returns its accumulated cycle costs.
func (d *Device) runBlock(cfg LaunchConfig, blockLinear int, kernel Kernel) blockCost {
	threads := cfg.Block.Count()
	bs := &blockState{
		shared: make([][]int64, 0, 4),
	}
	ctxs := make([]Ctx, threads)
	blockIdx := cfg.Grid.unflatten(blockLinear)
	for t := 0; t < threads; t++ {
		ctxs[t] = Ctx{
			dev:       d,
			block:     bs,
			BlockIdx:  blockIdx,
			ThreadIdx: cfg.Block.unflatten(t),
			BlockDim:  cfg.Block,
			GridDim:   cfg.Grid,
		}
	}
	if cfg.Cooperative {
		bs.barrier = newBarrier(threads)
		var wg sync.WaitGroup
		var panicOnce sync.Once
		var panicVal any
		wg.Add(threads)
		for t := 0; t < threads; t++ {
			go func(t int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if r != errBarrierBroken {
							panicOnce.Do(func() { panicVal = r })
						}
						// Release siblings parked at the barrier so the
						// block can unwind instead of deadlocking.
						bs.barrier.breakAll()
					}
				}()
				kernel(&ctxs[t])
			}(t)
		}
		wg.Wait()
		if panicVal != nil {
			panic(panicVal)
		}
	} else {
		for t := 0; t < threads; t++ {
			kernel(&ctxs[t])
		}
	}
	return d.costBlock(cfg, ctxs)
}

// blockCost aggregates a block's simulated execution cost.
type blockCost struct {
	compute  uint64 // Σ per-thread compute cycles
	memory   uint64 // Σ per-warp memory latency cycles
	critical uint64 // max per-warp (compute+memory) serial cycles
	counters counters
}

// costBlock folds per-thread cycle counters into warp-granular costs.
func (d *Device) costBlock(cfg LaunchConfig, ctxs []Ctx) blockCost {
	var bc blockCost
	ws := d.spec.WarpSize
	for w := 0; w*ws < len(ctxs); w++ {
		lo := w * ws
		hi := lo + ws
		if hi > len(ctxs) {
			hi = len(ctxs)
		}
		var warpCompute, warpMem uint64
		for t := lo; t < hi; t++ {
			c := &ctxs[t]
			bc.compute += c.computeCycles
			if c.computeCycles > warpCompute {
				warpCompute = c.computeCycles
			}
			if c.memCycles > warpMem {
				warpMem = c.memCycles
			}
			bc.counters.add(&c.counts)
		}
		bc.memory += warpMem
		if s := warpCompute + warpMem; s > bc.critical {
			bc.critical = s
		}
	}
	return bc
}

// occupancyWarps returns how many warps of this launch can be resident on
// one SM at a time, limited by the architectural cap and by register
// pressure.
func (d *Device) occupancyWarps(cfg LaunchConfig) int {
	warps := d.spec.MaxResidentWarps
	if cfg.RegsPerThread > 0 {
		byRegs := d.spec.RegistersPerSM / (cfg.RegsPerThread * d.spec.WarpSize)
		if byRegs < 1 {
			byRegs = 1
		}
		if byRegs < warps {
			warps = byRegs
		}
	}
	return warps
}

// kernelSeconds converts per-block costs into a simulated kernel duration:
// blocks are distributed round-robin over SMs and serialize there; within
// a block, compute throughput is bounded by the SM's warp issue width,
// memory latency is hidden across the resident warps (occupancy-limited),
// and no warp can finish faster than its own serial execution.
func (d *Device) kernelSeconds(cfg LaunchConfig, blocks []blockCost) float64 {
	issueWarps := float64(d.spec.CoresPerSM) / float64(d.spec.WarpSize)
	if issueWarps < 1 {
		issueWarps = 1
	}
	blockWarps := (cfg.Block.Count() + d.spec.WarpSize - 1) / d.spec.WarpSize
	overlap := d.occupancyWarps(cfg)
	if blockWarps < overlap {
		overlap = blockWarps
	}
	if overlap < 1 {
		overlap = 1
	}
	smCycles := make([]float64, d.spec.SMs)
	for i, bc := range blocks {
		computeBound := float64(bc.compute) / float64(d.spec.CoresPerSM)
		memoryBound := float64(bc.memory) / float64(overlap)
		cycles := computeBound
		if memoryBound > cycles {
			cycles = memoryBound
		}
		if crit := float64(bc.critical); crit > cycles {
			cycles = crit
		}
		smCycles[i%d.spec.SMs] += cycles
	}
	var maxSM float64
	for _, c := range smCycles {
		if c > maxSM {
			maxSM = c
		}
	}
	return maxSM/(d.spec.ClockMHz*1e6) + d.spec.KernelLaunchSec
}

// chargeTransfer accounts a host↔device copy of the given byte volume.
func (d *Device) chargeTransfer(bytes int, toDevice bool) {
	seconds := d.spec.TransferLatencySec + float64(bytes)/(d.spec.PCIeGBPerSec*1e9)
	d.mu.Lock()
	startAt := d.simTime
	d.simTime += seconds
	d.mu.Unlock()
	d.prof.recordTransfer(bytes, seconds, toDevice)
	cat, tid := "d2h", 2
	if toDevice {
		cat, tid = "h2d", 1
	}
	d.recordTraceEvent("memcpy", cat, startAt, seconds, tid)
}
