package cudasim

// Texture memory. The paper's conclusion lists "utilization of the
// texture memory of the GPU to make use of its spatial cache" as future
// work; this file implements that extension for the simulator. A texture
// is a read-only snapshot of device data fetched through a small
// spatially-indexed cache: fetches that hit the neighbourhood of a recent
// fetch cost close to a register read, while cache misses pay a reduced
// global-memory latency (the texture path has its own cache hierarchy).
// The GPUSA pipeline exposes a TextureMemory option and
// BenchmarkAblationTexture measures the effect.

// Texture cost model constants.
const (
	// TexLineElems is the granularity of the texture cache in elements.
	TexLineElems = 16
	// CyclesTexHit is a fetch served by the texture cache.
	CyclesTexHit = 4
	// CyclesTexMiss is a fetch that misses to device memory through the
	// texture path.
	CyclesTexMiss = 100
	// texCacheLines is the per-thread modelled texture-cache capacity in
	// lines (tiny, as on real hardware where the per-SM texture cache is
	// shared by many threads).
	texCacheLines = 4
)

// Texture is a read-only texture binding of a data snapshot.
type Texture[T any] struct {
	data []T
}

// NewTexture binds a texture over a copy of the buffer's current
// contents (cudaBindTexture semantics: the texture sees the data as of
// binding time; later buffer writes are not reflected).
func NewTexture[T any](b *Buffer[T]) *Texture[T] {
	t := &Texture[T]{data: make([]T, len(b.data))}
	copy(t.data, b.data)
	return t
}

// Len returns the element count of the texture.
func (t *Texture[T]) Len() int { return len(t.data) }

// TexCache is the per-thread texture-cache model state. Allocate one per
// simulated thread (it models the thread's view of the SM texture cache)
// and pass it to Fetch.
type TexCache struct {
	lines [texCacheLines]int
	next  int
	init  bool
}

// Reset invalidates the cache (e.g. between kernels).
func (c *TexCache) Reset() { *c = TexCache{} }

// Fetch reads element i through the texture cache, charging the thread
// according to spatial locality.
func (t *Texture[T]) Fetch(ctx *Ctx, cache *TexCache, i int) T {
	line := i / TexLineElems
	if !cache.init {
		for k := range cache.lines {
			cache.lines[k] = -1
		}
		cache.init = true
	}
	hit := false
	for _, l := range cache.lines {
		if l == line {
			hit = true
			break
		}
	}
	if hit {
		ctx.computeCycles += CyclesTexHit
	} else {
		ctx.memCycles += CyclesTexMiss
		ctx.counts.texMisses++
		cache.lines[cache.next] = line
		cache.next = (cache.next + 1) % texCacheLines
	}
	ctx.counts.texFetches++
	return t.data[i]
}
