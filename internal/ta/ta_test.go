package ta

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/xrand"
)

func randomCDD(rng *rand.Rand, n int) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	in, err := problem.NewCDD("t", p, alpha, beta, int64(float64(sum)*0.6))
	if err != nil {
		panic(err)
	}
	return in
}

func TestChainImprovesOverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		in := randomCDD(rng, 25)
		eval := core.NewEvaluator(in)
		xr := xrand.New(uint64(trial))
		_, randCost := core.RandomSolution(eval, xr)
		cfg := DefaultConfig()
		cfg.Iterations = 1000
		cfg.TempSamples = 200
		best := NewChain(cfg, eval, xr).Run()
		if best > randCost {
			t.Errorf("trial %d: TA best %d worse than random %d", trial, best, randCost)
		}
	}
}

func TestDeterministicAcceptance(t *testing.T) {
	// With threshold 0 TA is a strict hill climber: the incumbent cost
	// must be non-increasing.
	rng := rand.New(rand.NewSource(2))
	in := randomCDD(rng, 20)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Threshold0 = 1e-9 // effectively zero
	cfg.Iterations = 200
	c := NewChain(cfg, eval, xrand.New(3))
	_, prev := c.Best()
	for i := 0; i < 200; i++ {
		c.Step()
		_, cur := c.Best()
		if cur > prev {
			t.Fatalf("best worsened under zero threshold: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestBestIsPermutationAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomCDD(rng, 15)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Iterations = 300
	cfg.TempSamples = 100
	c := NewChain(cfg, eval, xrand.New(5))
	c.Run()
	seq, cost := c.Best()
	if !problem.IsPermutation(seq) {
		t.Error("best is not a permutation")
	}
	if got := eval.Cost(seq); got != cost {
		t.Errorf("best cost %d != re-evaluated %d", cost, got)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomCDD(rng, 20)
	run := func() int64 {
		eval := core.NewEvaluator(in)
		cfg := DefaultConfig()
		cfg.Iterations = 200
		cfg.TempSamples = 100
		return NewChain(cfg, eval, xrand.New(11)).Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed differs: %d vs %d", a, b)
	}
}

func TestEvaluationAccounting(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.TempSamples = 50
	cfg.Iterations = 20
	c := NewChain(cfg, eval, xrand.New(7))
	c.Run()
	if got := c.Evaluations(); got != 1+50+20 {
		t.Errorf("evaluations = %d, want 71", got)
	}
}
