// Package ta implements Threshold Accepting over job sequences, one of
// the metaheuristic family that Feldmann and Biskup [18] applied to the
// common due-date benchmark. It serves as the repository's stand-in CPU
// comparator for the paper's speedup baseline [18] (whose original
// runtimes are not reproducible without the 2003 hardware): like SA but
// with a deterministic acceptance rule — a candidate is accepted when it
// is at most `threshold` worse than the incumbent, and the threshold
// decays geometrically.
package ta

import (
	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/xrand"
)

// DefaultConfig returns Threshold Accepting parameters aligned with the
// SA budget: the initial threshold is estimated like SA's T₀ and decays
// with the same 0.88 factor.
func DefaultConfig() Config {
	return Config{
		Iterations:  1000,
		Decay:       0.88,
		Pert:        4,
		TempSamples: 5000,
	}
}

// Config are the TA parameters.
type Config struct {
	// Iterations is the chain length.
	Iterations int
	// Threshold0 is the initial acceptance threshold; when zero it is
	// estimated as the fitness standard deviation of TempSamples random
	// sequences (the same estimator the paper uses for SA's T₀).
	Threshold0 float64
	// Decay is the geometric threshold decay per iteration.
	Decay float64
	// Pert is the perturbation size of the neighbourhood.
	Pert int
	// TempSamples is the sample count for the Threshold0 estimate.
	TempSamples int
}

func (c Config) normalized(n int) Config {
	d := DefaultConfig()
	if c.Iterations <= 0 {
		c.Iterations = d.Iterations
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = d.Decay
	}
	if c.Pert <= 0 {
		c.Pert = d.Pert
	}
	if c.Pert > n {
		c.Pert = n
	}
	if c.TempSamples <= 0 {
		c.TempSamples = d.TempSamples
	}
	return c
}

// Chain is one threshold-accepting trajectory.
type Chain struct {
	cfg  Config
	eval core.Evaluator
	rng  *xrand.XORWOW
	ops  *perm.Ops

	cur, cand []int
	curCost   int64
	best      []int
	bestCost  int64
	threshold float64
	evals     int64
}

// NewChain builds a chain with a random initial sequence.
func NewChain(cfg Config, eval core.Evaluator, rng *xrand.XORWOW) *Chain {
	n := eval.Instance().GenomeLen()
	cfg = cfg.normalized(n)
	c := &Chain{
		cfg:  cfg,
		eval: eval,
		rng:  rng,
		ops:  perm.NewOps(n),
		cur:  perm.Random(rng, n),
		cand: make([]int, n),
		best: make([]int, n),
	}
	c.curCost = eval.Cost(c.cur)
	c.evals++
	copy(c.best, c.cur)
	c.bestCost = c.curCost
	c.threshold = cfg.Threshold0
	if c.threshold <= 0 {
		c.threshold = core.InitialTemperature(eval, rng, cfg.TempSamples)
		c.evals += int64(cfg.TempSamples)
	}
	return c
}

// Step performs one TA iteration and returns the candidate cost.
func (c *Chain) Step() int64 {
	copy(c.cand, c.cur)
	c.ops.PartialShuffle(c.rng, c.cand, c.cfg.Pert)
	candCost := c.eval.Cost(c.cand)
	c.evals++
	if float64(candCost) <= float64(c.curCost)+c.threshold {
		c.cur, c.cand = c.cand, c.cur
		c.curCost = candCost
		if candCost < c.bestCost {
			copy(c.best, c.cur)
			c.bestCost = candCost
		}
	}
	c.threshold *= c.cfg.Decay
	return candCost
}

// Run executes the configured iterations and returns the best cost.
func (c *Chain) Run() int64 {
	for i := 0; i < c.cfg.Iterations; i++ {
		c.Step()
	}
	return c.bestCost
}

// Best returns the best sequence (borrowed) and its cost.
func (c *Chain) Best() ([]int, int64) { return c.best, c.bestCost }

// Evaluations returns the number of fitness evaluations performed.
func (c *Chain) Evaluations() int64 { return c.evals }
