package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Registry aggregates metrics snapshots across solver runs into a
// process-wide view a monitoring endpoint can export. Its String method
// renders the snapshot as JSON, satisfying expvar.Var so a server can
// `expvar.Publish("duedate", registry)` without an adapter. The zero
// value is ready to use; methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	runs   int64
	interr int64
	totals RegistryTotals
	phases map[string]*PhaseTotals
}

// RegistryTotals are the counter sums across all observed runs.
type RegistryTotals struct {
	Evaluations      int64 `json:"evaluations"`
	DeltaEvaluations int64 `json:"deltaEvaluations"`
	FullEvaluations  int64 `json:"fullEvaluations"`
	Acceptances      int64 `json:"acceptances"`
	Improvements     int64 `json:"improvements"`
}

// PhaseTotals are one phase's accumulated timing across all observed
// runs.
type PhaseTotals struct {
	Wall  time.Duration `json:"wallNs"`
	Sim   float64       `json:"simSeconds"`
	Count int64         `json:"count"`
}

// RegistrySnapshot is the exported view of a Registry.
type RegistrySnapshot struct {
	Runs        int64                  `json:"runs"`
	Interrupted int64                  `json:"interrupted"`
	Totals      RegistryTotals         `json:"totals"`
	Phases      map[string]PhaseTotals `json:"phases,omitempty"`
}

// Observe folds one run's metrics into the registry. A nil metrics (an
// uninstrumented run) is ignored.
func (r *Registry) Observe(m *core.Metrics) {
	if m == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	if m.InterruptedAt != "" {
		r.interr++
	}
	r.totals.Evaluations += m.Evaluations
	r.totals.DeltaEvaluations += m.DeltaEvaluations
	r.totals.FullEvaluations += m.FullEvaluations
	r.totals.Acceptances += m.Acceptances
	r.totals.Improvements += m.Improvements
	for _, p := range m.Phases {
		if r.phases == nil {
			r.phases = make(map[string]*PhaseTotals)
		}
		pt := r.phases[p.Name]
		if pt == nil {
			pt = &PhaseTotals{}
			r.phases[p.Name] = pt
		}
		pt.Wall += p.Wall
		pt.Sim += p.Sim
		pt.Count += p.Count
	}
}

// Snapshot returns a copy of the aggregated state.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{
		Runs:        r.runs,
		Interrupted: r.interr,
		Totals:      r.totals,
	}
	if len(r.phases) > 0 {
		s.Phases = make(map[string]PhaseTotals, len(r.phases))
		for name, pt := range r.phases {
			s.Phases[name] = *pt
		}
	}
	return s
}

// PhaseNames returns the names of all phases observed so far, sorted.
func (r *Registry) PhaseNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.phases))
	for name := range r.phases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders the snapshot as JSON; with it Registry satisfies
// expvar.Var.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ServeHTTP writes the registry snapshot as indented JSON, so a
// *Registry mounts directly as a monitoring endpoint — the solver half of
// the duedated server's /metrics payload is exactly this snapshot.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

var (
	_ expvar.Var   = (*Registry)(nil)
	_ http.Handler = (*Registry)(nil)
)
