package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestNilCollectorIsSafeAndOff(t *testing.T) {
	var c *Collector
	if c.Enabled() || c.Kernels() {
		t.Fatal("nil collector must report disabled")
	}
	// None of these may panic.
	c.Phase(PhaseFitness, time.Millisecond, 0.5)
	c.CountPhase(PhaseReduce)
	c.AddChain(ChainCounters{DeltaEvaluations: 3})
	c.AddDeltaEvals(1)
	c.AddFullEvals(1)
	c.AddAccepts(1)
	c.AddImprovements(1)
	c.AddBusy(time.Second)
	c.SetInterruptedAt("chain")
	if m := c.Snapshot(10, 2, 2, time.Second); m != nil {
		t.Fatalf("nil collector Snapshot = %+v, want nil", m)
	}
	if NewCollector(core.MetricsOff) != nil {
		t.Fatal("NewCollector(MetricsOff) must return nil")
	}
}

func TestCollectorLevels(t *testing.T) {
	counters := NewCollector(core.MetricsCounters)
	if !counters.Enabled() || counters.Kernels() {
		t.Fatalf("counters level: Enabled=%v Kernels=%v", counters.Enabled(), counters.Kernels())
	}
	kernels := NewCollector(core.MetricsKernels)
	if !kernels.Enabled() || !kernels.Kernels() {
		t.Fatalf("kernels level: Enabled=%v Kernels=%v", kernels.Enabled(), kernels.Kernels())
	}
}

func TestCollectorSnapshot(t *testing.T) {
	c := NewCollector(core.MetricsKernels)
	c.Phase(PhaseFitness, 2*time.Millisecond, 0.25)
	c.Phase(PhaseFitness, 3*time.Millisecond, 0.25)
	c.CountPhase(PhasePerturb)
	c.AddChain(ChainCounters{DeltaEvaluations: 5, FullEvaluations: 2, Acceptances: 4, Improvements: 1})
	c.AddAccepts(6)
	c.AddBusy(400 * time.Millisecond)
	c.SetInterruptedAt("iteration")
	c.SetInterruptedAt("chain") // first write wins

	m := c.Snapshot(7, 3, 2, time.Second)
	if m == nil {
		t.Fatal("Snapshot returned nil for enabled collector")
	}
	if m.Level != core.MetricsKernels || m.Evaluations != 7 || m.Chains != 3 || m.Workers != 2 {
		t.Fatalf("header fields wrong: %+v", m)
	}
	if m.DeltaEvaluations != 5 || m.FullEvaluations != 2 || m.Acceptances != 10 || m.Improvements != 1 {
		t.Fatalf("counters wrong: %+v", m)
	}
	if m.InterruptedAt != "iteration" {
		t.Fatalf("InterruptedAt = %q, want first write %q", m.InterruptedAt, "iteration")
	}
	wantUtil := float64(400*time.Millisecond) / (float64(time.Second) * 2)
	if m.Utilization != wantUtil {
		t.Fatalf("Utilization = %v, want %v", m.Utilization, wantUtil)
	}
	fit := m.Phase("fitness")
	if fit.Count != 2 || fit.Wall != 5*time.Millisecond || fit.Sim != 0.5 {
		t.Fatalf("fitness phase = %+v", fit)
	}
	if p := m.Phase("perturb"); p.Count != 1 || p.Wall != 0 {
		t.Fatalf("perturb phase = %+v", p)
	}
	if p := m.Phase("accept"); p.Count != 0 {
		t.Fatalf("unused phase must be zero, got %+v", p)
	}
}

func TestCollectorConcurrentSimAccumulation(t *testing.T) {
	c := NewCollector(core.MetricsKernels)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Phase(PhaseFitness, time.Nanosecond, 0.5)
			}
		}()
	}
	wg.Wait()
	m := c.Snapshot(0, 1, 1, time.Second)
	fit := m.Phase("fitness")
	if fit.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", fit.Count, goroutines*per)
	}
	if want := 0.5 * goroutines * per; fit.Sim != want {
		t.Fatalf("Sim = %v, want %v", fit.Sim, want)
	}
	if fit.Wall != goroutines*per*time.Nanosecond {
		t.Fatalf("Wall = %v", fit.Wall)
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < numPhases; p++ {
		name := p.String()
		if name == "" || name == "phase(?)" {
			t.Fatalf("phase %d has no name", p)
		}
		if seen[name] {
			t.Fatalf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	r.Observe(nil) // ignored
	r.Observe(&core.Metrics{
		Evaluations: 10, DeltaEvaluations: 6, FullEvaluations: 4,
		Acceptances: 3, Improvements: 1,
		Phases: []core.PhaseMetric{{Name: "fitness", Wall: time.Millisecond, Sim: 0.5, Count: 2}},
	})
	r.Observe(&core.Metrics{
		Evaluations: 5, InterruptedAt: "chain",
		Phases: []core.PhaseMetric{{Name: "fitness", Wall: time.Millisecond, Count: 1}},
	})

	s := r.Snapshot()
	if s.Runs != 2 || s.Interrupted != 1 {
		t.Fatalf("Runs=%d Interrupted=%d", s.Runs, s.Interrupted)
	}
	if s.Totals.Evaluations != 15 || s.Totals.DeltaEvaluations != 6 || s.Totals.Acceptances != 3 {
		t.Fatalf("totals = %+v", s.Totals)
	}
	fit := s.Phases["fitness"]
	if fit.Count != 3 || fit.Wall != 2*time.Millisecond || fit.Sim != 0.5 {
		t.Fatalf("fitness totals = %+v", fit)
	}
	if names := r.PhaseNames(); len(names) != 1 || names[0] != "fitness" {
		t.Fatalf("PhaseNames = %v", names)
	}

	var decoded RegistrySnapshot
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("Registry.String() is not valid JSON: %v", err)
	}
	if decoded.Runs != 2 || decoded.Totals.Evaluations != 15 {
		t.Fatalf("decoded snapshot = %+v", decoded)
	}
}
