package obs

import (
	"encoding/json"
	"sort"
	"sync"
)

// GaugeSet is a named set of int64 gauges and counters: the lightweight
// state-count companion to Registry for subsystems whose interesting
// numbers are "how many are in state X right now" rather than per-run
// metric snapshots (the duedated job store publishes its queued /
// running / terminal / subscriber counts through one). The zero value is
// ready to use; methods are safe for concurrent use. Updates take a
// mutex, so a GaugeSet belongs on admission/transition paths, not inner
// loops.
type GaugeSet struct {
	mu   sync.Mutex
	vals map[string]int64
}

// Add adds delta (which may be negative) to the named gauge, creating
// it at zero first.
func (g *GaugeSet) Add(name string, delta int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.vals == nil {
		g.vals = make(map[string]int64)
	}
	g.vals[name] += delta
}

// Set stores v as the named gauge's value.
func (g *GaugeSet) Set(name string, v int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.vals == nil {
		g.vals = make(map[string]int64)
	}
	g.vals[name] = v
}

// Get returns the named gauge's value (zero when never touched).
func (g *GaugeSet) Get(name string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vals[name]
}

// Snapshot returns a copy of every gauge, ready for JSON export. It is
// never nil, so an empty set marshals as {}.
func (g *GaugeSet) Snapshot() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.vals))
	for k, v := range g.vals {
		out[k] = v
	}
	return out
}

// Names returns the gauge names observed so far, sorted.
func (g *GaugeSet) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.vals))
	for k := range g.vals {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the snapshot as JSON; with it GaugeSet satisfies
// expvar.Var, matching Registry.
func (g *GaugeSet) String() string {
	b, err := json.Marshal(g.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
