package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestGaugeSetBasics pins the zero-value contract and the accessor
// semantics: Add creates at zero, Set overwrites, Get reads zero for
// untouched names, Names sorts, and String/Snapshot agree.
func TestGaugeSetBasics(t *testing.T) {
	var g GaugeSet
	if g.Get("missing") != 0 {
		t.Error("untouched gauge not zero")
	}
	g.Add("queued", 2)
	g.Add("queued", -1)
	g.Set("running", 5)
	if got := g.Get("queued"); got != 1 {
		t.Errorf("queued = %d, want 1", got)
	}
	if got := g.Get("running"); got != 5 {
		t.Errorf("running = %d, want 5", got)
	}
	if got := fmt.Sprint(g.Names()); got != "[queued running]" {
		t.Errorf("names %s", got)
	}
	snap := g.Snapshot()
	if snap["queued"] != 1 || snap["running"] != 5 {
		t.Errorf("snapshot %v", snap)
	}
	// Snapshot is a copy: mutating it must not leak back.
	snap["queued"] = 100
	if g.Get("queued") != 1 {
		t.Error("snapshot aliases the live map")
	}
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(g.String()), &decoded); err != nil {
		t.Fatalf("String is not JSON: %v", err)
	}
	if decoded["running"] != 5 {
		t.Errorf("String rendered %v", decoded)
	}
	// The empty set marshals as {} (never null), matching the /metrics
	// wire contract.
	var empty GaugeSet
	if empty.String() != "{}" {
		t.Errorf("empty set String %q", empty.String())
	}
	if empty.Snapshot() == nil {
		t.Error("empty Snapshot is nil")
	}
}

// TestGaugeSetConcurrent hammers one gauge from many goroutines under
// -race; the final value must account for every delta.
func TestGaugeSetConcurrent(t *testing.T) {
	var g GaugeSet
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add("n", 1)
				g.Get("n")
				g.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := g.Get("n"); got != workers*per {
		t.Errorf("n = %d, want %d", got, workers*per)
	}
}
