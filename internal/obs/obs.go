// Package obs is the engine observability layer: a lock-free metrics
// collector threaded through every solver driver (the shared CPU
// ensemble runtime and the three GPU pipelines) plus an expvar-compatible
// registry aggregating snapshots across runs.
//
// The design contract is "off means free": a nil *Collector is the
// disabled state, every method is nil-receiver-safe, and drivers guard
// anything costlier than a counter bump (time.Now, device event reads)
// behind Collector.Kernels(). Enabled collection is wait-free — atomic
// adds for counters and wall time, a CAS loop over float64 bits for
// simulated seconds — so instrumented chains and simulated CUDA threads
// never serialize on the collector.
package obs

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Phase identifies one instrumented stage of a solver. The GPU phases
// mirror the paper's kernel pipeline (perturb/fitness/accept/reduce for
// SA, update/fitness/pbest/reduce/broadcast for DPSO); the CPU ensembles
// report setup (which includes the T₀ estimation) and chain execution.
type Phase int

const (
	// PhaseT0 is initial-temperature estimation (plus, on the CPU
	// engines, chain construction and the initial evaluation).
	PhaseT0 Phase = iota
	// PhaseChain is the execution of a CPU chain's iteration loop.
	PhaseChain
	// PhaseInit is the GPU initialization kernel (seed bests/pbests).
	PhaseInit
	// PhasePerturb is the SA perturbation kernel.
	PhasePerturb
	// PhaseFitness is the fitness kernel (full or incremental).
	PhaseFitness
	// PhaseAccept is the SA metropolis-acceptance kernel.
	PhaseAccept
	// PhaseReduce is the atomic-min reduction kernel (or the host-side
	// reduction of the CPU drivers).
	PhaseReduce
	// PhaseUpdate is the DPSO position-update kernel.
	PhaseUpdate
	// PhasePBest is the DPSO personal-best refresh kernel.
	PhasePBest
	// PhaseBroadcast is the DPSO swarm-best broadcast kernel (and the
	// synchronous SA level broadcast).
	PhaseBroadcast
	// PhasePersistent is the single launch of the persistent SA kernel.
	PhasePersistent
	// PhaseDP is the pseudo-polynomial dynamic program of the EXACT-DP
	// driver (state expansion plus sequence reconstruction).
	PhaseDP
	// PhasePick is the AUTO meta-driver's calibration lookup (and, when
	// the instance is DP-eligible, the EXACT-DP attempt it gates).
	PhasePick
	// PhaseRace is one candidate leg of an AUTO race; the meta-driver
	// additionally appends one free-form "race:<pairing>" PhaseMetric per
	// candidate to the final Metrics.
	PhaseRace
	numPhases
)

// String implements fmt.Stringer; the names double as the PhaseMetric
// names in core.Metrics.
func (p Phase) String() string {
	switch p {
	case PhaseT0:
		return "t0"
	case PhaseChain:
		return "chain"
	case PhaseInit:
		return "init"
	case PhasePerturb:
		return "perturb"
	case PhaseFitness:
		return "fitness"
	case PhaseAccept:
		return "accept"
	case PhaseReduce:
		return "reduce"
	case PhaseUpdate:
		return "update"
	case PhasePBest:
		return "pbest"
	case PhaseBroadcast:
		return "broadcast"
	case PhasePersistent:
		return "persistent"
	case PhaseDP:
		return "dp"
	case PhasePick:
		return "pick"
	case PhaseRace:
		return "race"
	default:
		return "phase(?)"
	}
}

// ChainCounters are the cheap per-chain tallies a metaheuristic chain
// maintains while it runs. Chains expose them through CounterSource; the
// ensemble runtime folds them into the run's Collector.
type ChainCounters struct {
	// DeltaEvaluations counts candidates priced through the incremental
	// propose/commit path, FullEvaluations full O(n) passes (including
	// initialization and T₀ samples).
	DeltaEvaluations int64
	FullEvaluations  int64
	// Acceptances counts accepted moves, Improvements the subset that
	// improved the chain's best-so-far.
	Acceptances  int64
	Improvements int64
}

// CounterSource is implemented by chains that track ChainCounters
// (sa.Chain does); the ensemble runtime type-asserts against it so
// counter-less chains (TA, ES) cost nothing.
type CounterSource interface {
	Counters() ChainCounters
}

// phaseCell is one phase's accumulator. All fields are touched with
// atomics only.
type phaseCell struct {
	wallNS  atomic.Int64
	simBits atomic.Uint64 // float64 bits of accumulated simulated seconds
	count   atomic.Int64
}

// Collector gathers one solver run's metrics. Create it with
// NewCollector; a nil Collector is the metrics-off state and every
// method on it is a no-op, so drivers thread it unconditionally.
type Collector struct {
	level  core.MetricsLevel
	phases [numPhases]phaseCell

	deltaEvals atomic.Int64
	fullEvals  atomic.Int64
	accepts    atomic.Int64
	improves   atomic.Int64
	busyNS     atomic.Int64

	interruptedAt atomic.Pointer[string]
}

// NewCollector returns a collector for the level, or nil when the level
// is MetricsOff (levels below counters collect nothing).
func NewCollector(level core.MetricsLevel) *Collector {
	if level <= core.MetricsOff {
		return nil
	}
	return &Collector{level: level}
}

// Enabled reports whether any collection is active.
func (c *Collector) Enabled() bool { return c != nil }

// Kernels reports whether per-phase timing is active; drivers guard
// time.Now/device-event reads behind it so the counters level stays
// cheap.
func (c *Collector) Kernels() bool { return c != nil && c.level >= core.MetricsKernels }

// Phase folds one execution of a phase into its accumulator: host wall
// time, simulated device seconds, one launch.
func (c *Collector) Phase(p Phase, wall time.Duration, sim float64) {
	if c == nil {
		return
	}
	cell := &c.phases[p]
	cell.count.Add(1)
	if wall > 0 {
		cell.wallNS.Add(int64(wall))
	}
	if sim > 0 {
		for {
			old := cell.simBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + sim)
			if cell.simBits.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// CountPhase records one execution of a phase without timing (used at
// the counters level where wall/sim are not measured).
func (c *Collector) CountPhase(p Phase) {
	if c == nil {
		return
	}
	c.phases[p].count.Add(1)
}

// AddChain folds one chain's counters into the run totals.
func (c *Collector) AddChain(cc ChainCounters) {
	if c == nil {
		return
	}
	c.deltaEvals.Add(cc.DeltaEvaluations)
	c.fullEvals.Add(cc.FullEvaluations)
	c.accepts.Add(cc.Acceptances)
	c.improves.Add(cc.Improvements)
}

// AddDeltaEvals / AddFullEvals / AddAccepts / AddImprovements are the
// GPU kernels' direct counter hooks (the simulated threads have no Chain
// object to fold).
func (c *Collector) AddDeltaEvals(n int64) {
	if c != nil {
		c.deltaEvals.Add(n)
	}
}

// AddFullEvals counts full O(n) fitness passes.
func (c *Collector) AddFullEvals(n int64) {
	if c != nil {
		c.fullEvals.Add(n)
	}
}

// AddAccepts counts accepted moves.
func (c *Collector) AddAccepts(n int64) {
	if c != nil {
		c.accepts.Add(n)
	}
}

// AddImprovements counts per-chain best improvements.
func (c *Collector) AddImprovements(n int64) {
	if c != nil {
		c.improves.Add(n)
	}
}

// AddBusy accumulates chain busy time for the worker-utilization
// aggregate.
func (c *Collector) AddBusy(d time.Duration) {
	if c != nil && d > 0 {
		c.busyNS.Add(int64(d))
	}
}

// SetInterruptedAt records the boundary the run stopped at ("chain",
// "level", "generation", "iteration", "kernel-iteration"). First write
// wins.
func (c *Collector) SetInterruptedAt(boundary string) {
	if c == nil {
		return
	}
	c.interruptedAt.CompareAndSwap(nil, &boundary)
}

// Snapshot assembles the collected data into a core.Metrics. evaluations
// is the run's authoritative total (the engines' existing deterministic
// count); chains/workers/elapsed describe the run geometry. A nil
// collector returns nil, which keeps Result.Metrics nil for
// uninstrumented runs.
func (c *Collector) Snapshot(evaluations int64, chains, workers int, elapsed time.Duration) *core.Metrics {
	if c == nil {
		return nil
	}
	m := &core.Metrics{
		Level:            c.level,
		Evaluations:      evaluations,
		DeltaEvaluations: c.deltaEvals.Load(),
		FullEvaluations:  c.fullEvals.Load(),
		Acceptances:      c.accepts.Load(),
		Improvements:     c.improves.Load(),
		Chains:           chains,
		Workers:          workers,
		WorkerBusy:       time.Duration(c.busyNS.Load()),
	}
	if workers > 0 && elapsed > 0 {
		m.Utilization = float64(m.WorkerBusy) / (float64(elapsed) * float64(workers))
	}
	if p := c.interruptedAt.Load(); p != nil {
		m.InterruptedAt = *p
	}
	for i := Phase(0); i < numPhases; i++ {
		cell := &c.phases[i]
		count := cell.count.Load()
		if count == 0 {
			continue
		}
		m.Phases = append(m.Phases, core.PhaseMetric{
			Name:  i.String(),
			Wall:  time.Duration(cell.wallNS.Load()),
			Sim:   math.Float64frombits(cell.simBits.Load()),
			Count: count,
		})
	}
	return m
}
