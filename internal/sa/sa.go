// Package sa implements the Simulated Annealing core of the paper
// (Algorithm 1): metropolis acceptance over job sequences, exponential
// cooling with factor μ = 0.88, and the Fisher–Yates partial-shuffle
// perturbation of size Pert = 4. A Chain is the unit that runs inside one
// simulated CUDA thread (asynchronous ensemble) or one host goroutine; the
// serial CPU solver is a single chain or a serially executed ensemble.
package sa

import (
	"math"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/xrand"
)

// DefaultConfig returns the paper's published SA parameters.
func DefaultConfig() Config {
	return Config{
		Iterations:     1000,
		Cooling:        0.88,
		Pert:           4,
		ReselectPeriod: 10,
		TempSamples:    5000,
	}
}

// Config are the SA parameters. The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// Iterations is the chain length (1000 or 5000 in the paper's runs).
	Iterations int
	// T0 is the initial temperature. When zero it is estimated as the
	// standard deviation of TempSamples random-sequence fitnesses
	// (Salamon–Sibani–Frost, as in the paper).
	T0 float64
	// Cooling is the exponential factor μ ∈ (0,1); T ← T·μ each iteration.
	Cooling float64
	// Pert is the perturbation size: the number of positions whose jobs
	// are shuffled to form a neighbour.
	Pert int
	// ReselectPeriod re-draws the Pert positions every that many
	// iterations ("after every 10 SA iterations" in the paper); between
	// re-draws the same positions are re-shuffled. 1 draws fresh
	// positions every iteration.
	ReselectPeriod int
	// TempSamples is the sample count for the T0 estimate.
	TempSamples int
	// TMin, when positive, floors the temperature (a common guard against
	// denormal temperatures on very long runs; off by default).
	TMin float64
	// Schedule selects the cooling schedule (default Exponential, the
	// paper's choice; see cooling.go for the alternatives).
	Schedule Schedule
	// ReheatPeriod and ReheatFactor configure the Reheating schedule.
	ReheatPeriod int
	ReheatFactor float64
	// Neighborhood selects the move operator (default NeighborShuffle,
	// the paper's Pert-subset Fisher–Yates perturbation).
	Neighborhood NeighborOp
}

// NeighborOp identifies the neighbourhood move of a chain.
type NeighborOp int

const (
	// NeighborShuffle is the paper's perturbation: Fisher–Yates over a
	// Pert-subset of positions (re-drawn every ReselectPeriod).
	NeighborShuffle NeighborOp = iota
	// NeighborSwap exchanges two random positions.
	NeighborSwap
	// NeighborInsert relocates one random job.
	NeighborInsert
	// NeighborReverse reverses a random segment (2-opt style).
	NeighborReverse
	// NeighborMixed applies the shuffle on re-draw iterations and a swap
	// otherwise — a small-step/large-step mix.
	NeighborMixed
)

// normalized returns the config with unset fields defaulted and bounds
// enforced, so Chain code can assume sanity.
func (c Config) normalized(n int) Config {
	d := DefaultConfig()
	if c.Iterations <= 0 {
		c.Iterations = d.Iterations
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = d.Cooling
	}
	if c.Pert <= 0 {
		c.Pert = d.Pert
	}
	if c.Pert > n {
		c.Pert = n
	}
	if c.ReselectPeriod <= 0 {
		c.ReselectPeriod = d.ReselectPeriod
	}
	if c.TempSamples <= 0 {
		c.TempSamples = d.TempSamples
	}
	return c
}

// Chain is one annealing trajectory. It owns all its scratch state, so
// distinct chains may run concurrently.
type Chain struct {
	cfg   Config
	eval  core.Evaluator
	delta core.DeltaEvaluator // non-nil when eval supports propose/commit
	rng   *xrand.XORWOW

	cur     []int
	cand    []int
	pos     []int // the Pert positions currently perturbed
	touched []int // positions the last Neighbour call may have changed
	curCost int64

	best     []int
	bestCost int64

	temp   float64
	cooler *Cooler
	iter   int
	evals  int64

	// Plain-int64 tallies for the observability layer; always maintained
	// (a few register increments per step) and folded into a run's
	// obs.Collector through Counters.
	deltaEvals int64
	fullEvals  int64
	accepts    int64
	improves   int64
}

// NewChain builds a chain over the evaluator with its own RNG stream. The
// initial solution is a uniformly random sequence; the initial
// temperature follows the config. When the evaluator implements
// core.DeltaEvaluator, the chain prices each neighbour incrementally
// through the propose/commit protocol — the costs (and therefore the
// trajectory) are bit-identical to full evaluation, only cheaper.
func NewChain(cfg Config, eval core.Evaluator, rng *xrand.XORWOW) *Chain {
	n := eval.Instance().GenomeLen()
	cfg = cfg.normalized(n)
	c := &Chain{
		cfg:     cfg,
		eval:    eval,
		rng:     rng,
		cur:     perm.Random(rng, n),
		cand:    make([]int, n),
		pos:     make([]int, 0, cfg.Pert),
		touched: make([]int, 0, n),
		best:    make([]int, n),
	}
	if de, ok := eval.(core.DeltaEvaluator); ok {
		c.delta = de
		c.curCost = de.Reset(c.cur)
	} else {
		c.curCost = eval.Cost(c.cur)
	}
	c.evals++
	c.fullEvals++
	copy(c.best, c.cur)
	c.bestCost = c.curCost
	c.temp = cfg.T0
	if c.temp <= 0 {
		c.temp = core.InitialTemperature(eval, rng, cfg.TempSamples)
		c.evals += int64(cfg.TempSamples)
		c.fullEvals += int64(cfg.TempSamples)
	}
	if cfg.Schedule != Exponential {
		c.cooler = NewCooler(cfg.Schedule, c.temp, cfg.Cooling, cfg.Iterations, cfg.ReheatPeriod, cfg.ReheatFactor)
	}
	return c
}

// SetSolution replaces the current state with the given sequence (copied),
// e.g. to broadcast the synchronous ensemble's global best.
func (c *Chain) SetSolution(seq []int, cost int64) {
	copy(c.cur, seq)
	c.curCost = cost
	if c.delta != nil {
		c.delta.Reset(c.cur)
	}
	if cost < c.bestCost {
		copy(c.best, seq)
		c.bestCost = cost
	}
}

// Current returns the chain's current sequence (borrowed) and cost.
func (c *Chain) Current() ([]int, int64) { return c.cur, c.curCost }

// Best returns the best sequence seen (borrowed) and its cost.
func (c *Chain) Best() ([]int, int64) { return c.best, c.bestCost }

// Temperature returns the current annealing temperature.
func (c *Chain) Temperature() float64 { return c.temp }

// Evaluations returns the number of fitness evaluations performed,
// including the T0 estimation samples.
func (c *Chain) Evaluations() int64 { return c.evals }

// Counters returns the chain's observability tallies; with it Chain
// satisfies obs.CounterSource.
func (c *Chain) Counters() obs.ChainCounters {
	return obs.ChainCounters{
		DeltaEvaluations: c.deltaEvals,
		FullEvaluations:  c.fullEvals,
		Acceptances:      c.accepts,
		Improvements:     c.improves,
	}
}

// Neighbour writes a perturbed copy of the current sequence into the
// chain's candidate buffer and returns it (borrowed). For the default
// shuffle operator the positions are re-drawn every ReselectPeriod
// iterations, per Section VI of the paper. Each move records the touched
// positions so an incremental evaluator can price the candidate in
// O(touched) rather than O(n).
func (c *Chain) Neighbour() []int {
	copy(c.cand, c.cur)
	switch c.cfg.Neighborhood {
	case NeighborSwap:
		i, j := perm.Swap(c.rng, c.cand)
		c.touched = append(c.touched[:0], i, j)
	case NeighborInsert:
		c.touchRange(perm.Insert(c.rng, c.cand))
	case NeighborReverse:
		c.touchRange(perm.ReverseSegment(c.rng, c.cand))
	case NeighborMixed:
		if c.iter%c.cfg.ReselectPeriod == 0 || len(c.pos) == 0 {
			c.drawPositions()
			c.shuffleAtPositions(c.cand)
			c.touched = append(c.touched[:0], c.pos...)
		} else {
			i, j := perm.Swap(c.rng, c.cand)
			c.touched = append(c.touched[:0], i, j)
		}
	default:
		if c.iter%c.cfg.ReselectPeriod == 0 || len(c.pos) == 0 {
			c.drawPositions()
		}
		c.shuffleAtPositions(c.cand)
		c.touched = append(c.touched[:0], c.pos...)
	}
	return c.cand
}

// touchRange records the inclusive window [lo, hi] as touched positions.
func (c *Chain) touchRange(lo, hi int) {
	c.touched = c.touched[:0]
	for p := lo; p <= hi; p++ {
		c.touched = append(c.touched, p)
	}
}

// drawPositions samples Pert distinct positions uniformly.
func (c *Chain) drawPositions() {
	n := len(c.cur)
	k := c.cfg.Pert
	c.pos = c.pos[:0]
	// Floyd's algorithm for a uniform k-subset without extra state.
	for j := n - k; j < n; j++ {
		t := c.rng.Intn(j + 1)
		found := false
		for _, p := range c.pos {
			if p == t {
				found = true
				break
			}
		}
		if found {
			c.pos = append(c.pos, j)
		} else {
			c.pos = append(c.pos, t)
		}
	}
}

// shuffleAtPositions Fisher–Yates-shuffles the jobs at the drawn
// positions inside seq.
func (c *Chain) shuffleAtPositions(seq []int) {
	k := len(c.pos)
	for i := k - 1; i > 0; i-- {
		j := c.rng.Intn(i + 1)
		a, b := c.pos[i], c.pos[j]
		seq[a], seq[b] = seq[b], seq[a]
	}
}

// Step performs one SA iteration: neighbour, evaluate, metropolis accept,
// cool. It returns the candidate's cost (whether accepted or not). With an
// incremental evaluator the candidate is priced by Propose over the
// touched positions and the cache advances by Commit only on acceptance.
func (c *Chain) Step() int64 {
	cand := c.Neighbour()
	var candCost int64
	if c.delta != nil {
		candCost = c.delta.Propose(cand, c.touched)
		c.deltaEvals++
	} else {
		candCost = c.eval.Cost(cand)
		c.fullEvals++
	}
	c.evals++
	if c.accept(candCost) {
		if c.delta != nil {
			c.delta.Commit()
		}
		c.cur, c.cand = c.cand, c.cur
		c.curCost = candCost
		c.accepts++
		if candCost < c.bestCost {
			copy(c.best, c.cur)
			c.bestCost = candCost
			c.improves++
		}
	}
	c.iter++
	if c.cooler != nil {
		c.temp = c.cooler.At(c.iter)
	} else {
		c.temp *= c.cfg.Cooling
	}
	if c.cfg.TMin > 0 && c.temp < c.cfg.TMin {
		c.temp = c.cfg.TMin
	}
	return candCost
}

// accept applies the metropolis criterion of Algorithm 1:
// exp((E−E_new)/T) ≥ rand(0,1). Improvements are always accepted.
func (c *Chain) accept(candCost int64) bool {
	if candCost <= c.curCost {
		return true
	}
	if c.temp <= 0 {
		return false
	}
	return math.Exp(float64(c.curCost-candCost)/c.temp) >= c.rng.Float64()
}

// Run executes the configured number of iterations and returns the best
// cost found.
func (c *Chain) Run() int64 {
	for i := 0; i < c.cfg.Iterations; i++ {
		c.Step()
	}
	return c.bestCost
}
