package sa

import (
	"math/rand"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/xrand"
)

func randomCDD(rng *rand.Rand, n int) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	in, err := problem.NewCDD("t", p, alpha, beta, int64(float64(sum)*0.6))
	if err != nil {
		panic(err)
	}
	return in
}

func TestDefaultsMatchPaper(t *testing.T) {
	d := DefaultConfig()
	if d.Cooling != 0.88 {
		t.Errorf("cooling = %v, want the paper's 0.88", d.Cooling)
	}
	if d.Pert != 4 {
		t.Errorf("Pert = %d, want 4", d.Pert)
	}
	if d.TempSamples != 5000 {
		t.Errorf("TempSamples = %d, want 5000", d.TempSamples)
	}
	if d.ReselectPeriod != 10 {
		t.Errorf("ReselectPeriod = %d, want 10", d.ReselectPeriod)
	}
}

func TestChainSolvesPaperExample(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Iterations = 2000
	cfg.TempSamples = 500
	chain := NewChain(cfg, eval, xrand.New(1))
	got := chain.Run()
	// Exhaustive check over all 120 sequences gives the global optimum.
	want := bruteForceBest(in)
	if got != want {
		t.Errorf("SA best = %d, brute force optimum = %d", got, want)
	}
	seq, cost := chain.Best()
	if !problem.IsPermutation(seq) {
		t.Error("best sequence is not a permutation")
	}
	if cost != eval.Cost(seq) {
		t.Errorf("cached best cost %d != re-evaluated %d", cost, eval.Cost(seq))
	}
}

func bruteForceBest(in *problem.Instance) int64 {
	n := in.N()
	seq := problem.IdentitySequence(n)
	best := int64(1) << 62
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			if c := cdd.OptimizeSequence(in, seq).Cost; c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			seq[k], seq[i] = seq[i], seq[k]
			permute(k + 1)
			seq[k], seq[i] = seq[i], seq[k]
		}
	}
	permute(0)
	return best
}

func TestChainImprovesOverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		in := randomCDD(rng, 30)
		eval := core.NewEvaluator(in)
		xr := xrand.New(uint64(trial))
		randSeq, randCost := core.RandomSolution(eval, xr)
		_ = randSeq
		cfg := DefaultConfig()
		cfg.Iterations = 1500
		cfg.TempSamples = 300
		chain := NewChain(cfg, eval, xr)
		best := chain.Run()
		if best > randCost {
			t.Errorf("trial %d: SA best %d worse than a random solution %d", trial, best, randCost)
		}
	}
}

func TestTemperatureCoolsExponentially(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.T0 = 100
	cfg.TempSamples = 10
	chain := NewChain(cfg, eval, xrand.New(2))
	if chain.Temperature() != 100 {
		t.Fatalf("T0 = %v", chain.Temperature())
	}
	chain.Step()
	if got := chain.Temperature(); got != 88 {
		t.Errorf("after one step T = %v, want 88", got)
	}
	for i := 0; i < 9; i++ {
		chain.Step()
	}
	want := 100.0
	for i := 0; i < 10; i++ {
		want *= 0.88
	}
	if got := chain.Temperature(); got < want*0.999 || got > want*1.001 {
		t.Errorf("after 10 steps T = %v, want %v", got, want)
	}
}

func TestTMinFloorsTemperature(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.T0 = 1
	cfg.TMin = 0.5
	cfg.TempSamples = 10
	chain := NewChain(cfg, eval, xrand.New(3))
	for i := 0; i < 50; i++ {
		chain.Step()
	}
	if chain.Temperature() != 0.5 {
		t.Errorf("T = %v, want floored at 0.5", chain.Temperature())
	}
}

func TestT0EstimatedWhenZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randomCDD(rng, 20)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.TempSamples = 200
	chain := NewChain(cfg, eval, xrand.New(4))
	if chain.Temperature() <= 0 {
		t.Errorf("estimated T0 = %v, want > 0", chain.Temperature())
	}
	// The estimate must match core.InitialTemperature with the same stream.
	xr := xrand.New(4)
	eval2 := core.NewEvaluator(in)
	_ = permRandomConsume(xr, in.N()) // NewChain draws the initial solution first
	want := core.InitialTemperature(eval2, xr, 200)
	if got := chain.Temperature(); got != want {
		t.Errorf("T0 = %v, want %v (same RNG stream)", got, want)
	}
}

// permRandomConsume replays the RNG draws NewChain makes before the T0
// estimate (the random initial sequence).
func permRandomConsume(r *xrand.XORWOW, n int) []int {
	seq := problem.IdentitySequence(n)
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq
}

func TestNeighbourChangesAtMostPertPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomCDD(rng, 40)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Pert = 4
	cfg.TempSamples = 10
	chain := NewChain(cfg, eval, xrand.New(6))
	for i := 0; i < 200; i++ {
		cur, _ := chain.Current()
		orig := append([]int(nil), cur...)
		cand := chain.Neighbour()
		if !problem.IsPermutation(cand) {
			t.Fatal("neighbour is not a permutation")
		}
		diff := 0
		for p := range orig {
			if cand[p] != orig[p] {
				diff++
			}
		}
		if diff > 4 {
			t.Fatalf("neighbour changed %d positions, Pert=4", diff)
		}
		chain.Step()
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randomCDD(rng, 25)
	run := func() int64 {
		eval := core.NewEvaluator(in)
		cfg := DefaultConfig()
		cfg.Iterations = 300
		cfg.TempSamples = 100
		return NewChain(cfg, eval, xrand.New(42)).Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different results: %d vs %d", a, b)
	}
}

func TestSetSolutionBroadcast(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.TempSamples = 10
	chain := NewChain(cfg, eval, xrand.New(7))
	seq := problem.IdentitySequence(5)
	cost := eval.Cost(seq)
	chain.SetSolution(seq, cost)
	cur, curCost := chain.Current()
	if curCost != cost {
		t.Errorf("current cost %d, want %d", curCost, cost)
	}
	for i := range seq {
		if cur[i] != seq[i] {
			t.Fatal("current sequence not replaced")
		}
	}
	// Broadcasting a worse solution must not corrupt the best.
	_, bestBefore := chain.Best()
	worst := []int{4, 3, 2, 1, 0}
	chain.SetSolution(worst, eval.Cost(worst)+1000000)
	if _, bestAfter := chain.Best(); bestAfter != bestBefore {
		t.Error("SetSolution with worse cost changed best")
	}
}

func TestEvaluationAccounting(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.TempSamples = 100
	cfg.Iterations = 50
	chain := NewChain(cfg, eval, xrand.New(8))
	base := chain.Evaluations() // 1 initial + 100 T0 samples
	if base != 101 {
		t.Errorf("initial evaluations = %d, want 101", base)
	}
	chain.Run()
	if got := chain.Evaluations(); got != base+50 {
		t.Errorf("after 50 iterations evaluations = %d, want %d", got, base+50)
	}
}

func TestConfigNormalization(t *testing.T) {
	cfg := Config{Pert: 100}.normalized(5)
	if cfg.Pert != 5 {
		t.Errorf("Pert clamped to %d, want 5", cfg.Pert)
	}
	cfg = Config{Cooling: 2.0}.normalized(5)
	if cfg.Cooling != 0.88 {
		t.Errorf("invalid cooling defaulted to %v, want 0.88", cfg.Cooling)
	}
}

// TestMetropolisStatistics pins the acceptance criterion's behavior at
// the temperature extremes: with T enormous essentially every candidate
// is accepted (random walk), with T ≈ 0 only improvements are.
func TestMetropolisStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	in := randomCDD(rng, 30)
	run := func(t0 float64) (accepted, worse int) {
		eval := core.NewEvaluator(in)
		cfg := DefaultConfig()
		cfg.T0 = t0
		cfg.Cooling = 0.999999 // hold the temperature ~constant
		cfg.TempSamples = 10
		chain := NewChain(cfg, eval, xrand.New(42))
		for i := 0; i < 400; i++ {
			_, before := chain.Current()
			candCost := chain.Step()
			_, after := chain.Current()
			if candCost > before {
				worse++
				if after == candCost {
					accepted++
				}
			}
		}
		return accepted, worse
	}
	accHot, worseHot := run(1e12)
	if worseHot == 0 {
		t.Fatal("no worsening candidates generated at all")
	}
	if rate := float64(accHot) / float64(worseHot); rate < 0.95 {
		t.Errorf("at huge T only %.0f%% of worsening moves accepted, want ≈ 100%%", rate*100)
	}
	accCold, worseCold := run(1e-9)
	if worseCold == 0 {
		t.Fatal("no worsening candidates generated at cold T")
	}
	if accCold != 0 {
		t.Errorf("at T≈0, %d/%d worsening moves accepted, want 0", accCold, worseCold)
	}
}

// TestDeltaChainMatchesPlainChain runs the same seeded chain once over the
// plain full-pass evaluator and once over the incremental propose/commit
// evaluator, for every neighbourhood operator and both problem kinds. The
// delta evaluator returns bit-identical costs, so every metropolis
// decision — and hence the whole trajectory — must coincide step for step.
func TestDeltaChainMatchesPlainChain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	kinds := []func() *problem.Instance{
		func() *problem.Instance { return randomCDD(rng, 40) },
		func() *problem.Instance { return problem.PaperExample(problem.UCDDCP) },
	}
	ops := []NeighborOp{NeighborShuffle, NeighborSwap, NeighborInsert, NeighborReverse, NeighborMixed}
	for ki, mk := range kinds {
		in := mk()
		for _, op := range ops {
			cfg := DefaultConfig()
			cfg.Iterations = 250
			cfg.TempSamples = 60
			cfg.Neighborhood = op
			plain := NewChain(cfg, core.NewEvaluator(in), xrand.New(99))
			delta := NewChain(cfg, core.NewDeltaEvaluator(in), xrand.New(99))
			for it := 0; it < cfg.Iterations; it++ {
				a, b := plain.Step(), delta.Step()
				if a != b {
					t.Fatalf("kind %d op %v iter %d: plain cand cost %d, delta %d", ki, op, it, a, b)
				}
			}
			_, pc := plain.Best()
			_, dc := delta.Best()
			if pc != dc {
				t.Fatalf("kind %d op %v: best plain %d, delta %d", ki, op, pc, dc)
			}
			if plain.Evaluations() != delta.Evaluations() {
				t.Fatalf("kind %d op %v: evaluations plain %d, delta %d", ki, op, plain.Evaluations(), delta.Evaluations())
			}
		}
	}
}
