package sa

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/xrand"
)

func TestCoolerExponential(t *testing.T) {
	c := NewCooler(Exponential, 100, 0.5, 1000, 0, 0)
	for k, want := range []float64{100, 50, 25, 12.5} {
		if got := c.At(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("At(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestCoolerLinear(t *testing.T) {
	c := NewCooler(Linear, 100, 0, 10, 0, 0)
	if got := c.At(0); got != 100 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(5); got != 50 {
		t.Errorf("At(5) = %v, want 50", got)
	}
	if got := c.At(10); got != 0 {
		t.Errorf("At(10) = %v, want 0", got)
	}
	if got := c.At(20); got != 0 {
		t.Errorf("At(20) = %v, want clamped 0", got)
	}
}

func TestCoolerLogarithmic(t *testing.T) {
	c := NewCooler(Logarithmic, 100, 0, 1000, 0, 0)
	if got := c.At(0); math.Abs(got-100) > 1e-9 {
		t.Errorf("At(0) = %v, want 100 (ln e = 1)", got)
	}
	// Must decrease, slowly.
	if !(c.At(10) < c.At(0)) || !(c.At(100) < c.At(10)) {
		t.Error("logarithmic schedule not decreasing")
	}
	if c.At(1000) < 10 {
		t.Errorf("logarithmic cooled too fast: At(1000) = %v", c.At(1000))
	}
}

func TestCoolerReheating(t *testing.T) {
	c := NewCooler(Reheating, 100, 0.5, 1000, 10, 0.5)
	// Within the first epoch: plain exponential.
	if got := c.At(3); math.Abs(got-100*0.125) > 1e-9 {
		t.Errorf("At(3) = %v, want 12.5", got)
	}
	// Start of the second epoch: reheated to T0·0.5.
	if got := c.At(10); math.Abs(got-50) > 1e-9 {
		t.Errorf("At(10) = %v, want reheated 50", got)
	}
	if !(c.At(10) > c.At(9)) {
		t.Error("no reheat spike at the epoch boundary")
	}
}

func TestCoolerDefaults(t *testing.T) {
	c := NewCooler(Reheating, 10, 0.9, 0, 0, 0)
	if c.reheatN != 100 || c.reheatF != 0.5 || c.total != 1 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestScheduleStrings(t *testing.T) {
	for s, want := range map[Schedule]string{
		Exponential: "exponential",
		Linear:      "linear",
		Logarithmic: "logarithmic",
		Reheating:   "reheating",
		Schedule(9): "schedule?",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

// TestChainWithAlternativeSchedules runs a chain under each schedule and
// checks the temperature trajectory matches the cooler exactly.
func TestChainWithAlternativeSchedules(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	for _, sched := range []Schedule{Linear, Logarithmic, Reheating} {
		t.Run(sched.String(), func(t *testing.T) {
			eval := core.NewEvaluator(in)
			cfg := DefaultConfig()
			cfg.T0 = 50
			cfg.Iterations = 40
			cfg.Schedule = sched
			cfg.ReheatPeriod = 10
			cfg.TempSamples = 10
			chain := NewChain(cfg, eval, xrand.New(1))
			cooler := NewCooler(sched, 50, cfg.Cooling, cfg.Iterations, cfg.ReheatPeriod, cfg.ReheatFactor)
			for k := 1; k <= 40; k++ {
				chain.Step()
				if got, want := chain.Temperature(), cooler.At(k); math.Abs(got-want) > 1e-9 {
					t.Fatalf("step %d: T = %v, cooler says %v", k, got, want)
				}
			}
		})
	}
}

// TestNeighborOperators runs a chain under each neighbourhood and checks
// validity plus improvement over random.
func TestNeighborOperators(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	for _, op := range []NeighborOp{NeighborShuffle, NeighborSwap, NeighborInsert, NeighborReverse, NeighborMixed} {
		eval := core.NewEvaluator(in)
		cfg := DefaultConfig()
		cfg.Iterations = 300
		cfg.TempSamples = 100
		cfg.Neighborhood = op
		// A 4-chain mini-ensemble: single chains can legitimately stall in
		// a local optimum of the narrower move operators (e.g. swap).
		best := int64(1) << 62
		for c := uint64(0); c < 4; c++ {
			chain := NewChain(cfg, eval, xrand.NewStream(uint64(op)+5, c))
			if b := chain.Run(); b < best {
				best = b
			}
			seq, _ := chain.Best()
			if !problem.IsPermutation(seq) {
				t.Errorf("op %d: best is not a permutation", op)
			}
		}
		if best > 81 {
			t.Errorf("op %d: 4-chain best %d did not reach the n=5 optimum 81", op, best)
		}
	}
}
