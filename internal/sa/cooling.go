package sa

import "math"

// Schedule identifies a cooling schedule. The paper uses Exponential with
// μ = 0.88; the others are standard alternatives offered by the library
// (BenchmarkAblationCooling compares factors, TestCoolingSchedules pins
// the curves).
type Schedule int

const (
	// Exponential is T_k = T₀·μᵏ (the paper's schedule).
	Exponential Schedule = iota
	// Linear is T_k = T₀·(1 − k/K), reaching zero at the final iteration.
	Linear
	// Logarithmic is the classic Boltzmann schedule T_k = T₀/ln(k+e),
	// which cools very slowly (theoretical convergence guarantees).
	Logarithmic
	// Reheating is exponential cooling that resets to T₀·ReheatFactor
	// every ReheatPeriod iterations — a cheap diversification device for
	// long runs.
	Reheating
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Exponential:
		return "exponential"
	case Linear:
		return "linear"
	case Logarithmic:
		return "logarithmic"
	case Reheating:
		return "reheating"
	default:
		return "schedule?"
	}
}

// Cooler computes the temperature for an iteration index. Coolers are
// stateless: T(k) is a pure function of k, so chains can be replayed and
// the GPU pipeline can evaluate it host-side or device-side identically.
type Cooler struct {
	schedule Schedule
	t0       float64
	mu       float64
	total    int
	reheatN  int
	reheatF  float64
}

// NewCooler builds a cooler. total is the planned iteration count (used
// by Linear); reheatPeriod/reheatFactor configure Reheating (defaults
// 100 and 0.5 when zero).
func NewCooler(schedule Schedule, t0, mu float64, total, reheatPeriod int, reheatFactor float64) *Cooler {
	if reheatPeriod <= 0 {
		reheatPeriod = 100
	}
	if reheatFactor <= 0 || reheatFactor > 1 {
		reheatFactor = 0.5
	}
	if total <= 0 {
		total = 1
	}
	return &Cooler{
		schedule: schedule,
		t0:       t0,
		mu:       mu,
		total:    total,
		reheatN:  reheatPeriod,
		reheatF:  reheatFactor,
	}
}

// At returns the temperature of iteration k (0-based).
func (c *Cooler) At(k int) float64 {
	switch c.schedule {
	case Linear:
		t := c.t0 * (1 - float64(k)/float64(c.total))
		if t < 0 {
			return 0
		}
		return t
	case Logarithmic:
		return c.t0 / math.Log(float64(k)+math.E)
	case Reheating:
		epoch := k / c.reheatN
		within := k % c.reheatN
		base := c.t0 * math.Pow(c.reheatF, float64(epoch))
		return base * math.Pow(c.mu, float64(within))
	default: // Exponential
		return c.t0 * math.Pow(c.mu, float64(k))
	}
}
