package core

import (
	"testing"

	"repro/internal/cdd"
	"repro/internal/perm"
	"repro/internal/problem"
	"repro/internal/ucddcp"
	"repro/internal/xrand"
)

// randomBatchInstance builds a random valid instance of either kind:
// p ∈ [1,20], α ∈ [0,10], β ∈ [0,15]; for CDD d ∈ [0, 2·ΣP+1]
// (restrictive and unrestricted alike), for UCDDCP d ∈ [ΣP, 2·ΣP]
// (the kind's validity bound) with m ∈ [1,p] and γ ∈ [0,12].
func randomBatchInstance(t testing.TB, kind problem.Kind, n int, rng *xrand.XORWOW) *problem.Instance {
	t.Helper()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	sum := 0
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = rng.Intn(11)
		beta[i] = rng.Intn(16)
		sum += p[i]
	}
	if kind == problem.CDD {
		in, err := problem.NewCDD("rand-cdd", p, alpha, beta, int64(rng.Intn(2*sum+2)))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	m := make([]int, n)
	gamma := make([]int, n)
	for i := 0; i < n; i++ {
		m[i] = 1 + rng.Intn(p[i])
		gamma[i] = rng.Intn(13)
	}
	d := int64(sum + rng.Intn(sum+1))
	in, err := problem.NewUCDDCP("rand-ucddcp", p, m, alpha, beta, gamma, d)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// singleFitness is the per-row reference the batch kernels must
// reproduce bit for bit: OptimizeArrays on the evaluator's own SoA
// columns, returning cost and abstract op count.
func singleFitness(be *BatchEvaluator, seq []int) (int64, int) {
	s := be.SoA()
	comp := make([]int64, s.N)
	if s.Kind == problem.UCDDCP {
		scratch := make([]int64, s.N)
		c, _, _, ops := ucddcp.OptimizeArrays(seq, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, comp, scratch, nil)
		return c, ops
	}
	c, _, _, ops := cdd.OptimizeArrays(seq, s.P, s.Alpha, s.Beta, s.D, comp)
	return c, ops
}

// checkBatchAgainstSingle scores the given sequences through every face
// of the batch API — Cost, CostSeqs, CostRows, CostRows32 and
// FitnessRows32 — and requires each cost (and each FitnessRows32 op
// count) to equal the per-sequence single-row path.
func checkBatchAgainstSingle(t *testing.T, in *problem.Instance, seqs [][]int) {
	t.Helper()
	single := NewEvaluator(in)
	be := NewBatchEvaluator(in)
	b := len(seqs)
	n := in.N()
	rows := make([]int, b*n)
	rows32 := make([]int32, b*n)
	want := make([]int64, b)
	wantOps := make([]int, b)
	for i, seq := range seqs {
		copy(rows[i*n:(i+1)*n], seq)
		for k, v := range seq {
			rows32[i*n+k] = int32(v)
		}
		want[i] = single.Cost(seq)
		var c int64
		c, wantOps[i] = singleFitness(be, seq)
		if c != want[i] {
			t.Fatalf("singleFitness cost %d != Evaluator.Cost %d (internal reference mismatch)", c, want[i])
		}
		if got := be.Cost(seq); got != want[i] {
			t.Errorf("%s n=%d B=%d: Cost(seqs[%d]) = %d, want %d", in.Kind, n, b, i, got, want[i])
		}
	}
	got := make([]int64, b)
	be.CostSeqs(seqs, got)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s n=%d B=%d: CostSeqs[%d] = %d, want %d", in.Kind, n, b, i, got[i], want[i])
		}
	}
	clear(got)
	be.CostRows(rows, got)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s n=%d B=%d: CostRows[%d] = %d, want %d", in.Kind, n, b, i, got[i], want[i])
		}
	}
	clear(got)
	be.CostRows32(rows32, got)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s n=%d B=%d: CostRows32[%d] = %d, want %d", in.Kind, n, b, i, got[i], want[i])
		}
	}
	clear(got)
	ops := make([]int, b)
	be.FitnessRows32(rows32, got, ops)
	for i := range got {
		if got[i] != want[i] || ops[i] != wantOps[i] {
			t.Errorf("%s n=%d B=%d: FitnessRows32[%d] = (%d, %d ops), want (%d, %d ops)",
				in.Kind, n, b, i, got[i], ops[i], want[i], wantOps[i])
		}
	}
}

// TestBatchEvaluatorMatchesSingle is the bit-identity property over
// random instances of both kinds: every batch face must agree with the
// per-sequence evaluators for batch sizes covering the empty, the
// single (odd-tail only), the pure-pair and the mixed cases.
func TestBatchEvaluatorMatchesSingle(t *testing.T) {
	rng := xrand.New(11)
	for _, kind := range []problem.Kind{problem.CDD, problem.UCDDCP} {
		for _, n := range []int{1, 2, 3, 7, 24} {
			for trial := 0; trial < 6; trial++ {
				in := randomBatchInstance(t, kind, n, rng)
				for _, b := range []int{0, 1, 2, 3, 5} {
					seqs := make([][]int, b)
					for i := range seqs {
						seqs[i] = perm.Random(rng, n)
					}
					checkBatchAgainstSingle(t, in, seqs)
				}
			}
		}
	}
}

// TestBatchEvaluatorPaperExamples pins the batch path to the paper's
// worked examples (CDD 81, UCDDCP 77 on the identity sequence).
func TestBatchEvaluatorPaperExamples(t *testing.T) {
	for kind, want := range map[problem.Kind]int64{problem.CDD: 81, problem.UCDDCP: 77} {
		in := problem.PaperExample(kind)
		be := NewBatchEvaluator(in)
		seq := problem.IdentitySequence(5)
		if got := be.Cost(seq); got != want {
			t.Errorf("%s: batch Cost = %d, want %d", kind, got, want)
		}
		costs := make([]int64, 2)
		be.CostSeqs([][]int{seq, seq}, costs)
		if costs[0] != want || costs[1] != want {
			t.Errorf("%s: CostSeqs = %v, want both %d", kind, costs, want)
		}
	}
}

// TestBatchEvaluatorFor checks the adapter: a BatchEvaluator passes
// through identically, other evaluators get a snapshot of their
// instance.
func TestBatchEvaluatorFor(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	be := NewBatchEvaluator(in)
	if BatchEvaluatorFor(be) != be {
		t.Error("BatchEvaluatorFor should pass a BatchEvaluator through")
	}
	adapted := BatchEvaluatorFor(NewEvaluator(in))
	if adapted.Instance() != in {
		t.Error("adapted evaluator lost its instance")
	}
	if got := adapted.Cost(problem.IdentitySequence(5)); got != 81 {
		t.Errorf("adapted Cost = %d, want 81", got)
	}
}

// TestSoAInstanceSharing checks that evaluators built over one shared
// snapshot score independently (distinct scratch, same columns).
func TestSoAInstanceSharing(t *testing.T) {
	in := problem.PaperExample(problem.UCDDCP)
	soa := NewSoAInstance(in)
	e1 := NewBatchEvaluatorSoA(in, soa)
	e2 := NewBatchEvaluatorSoA(in, soa)
	if e1.SoA() != e2.SoA() {
		t.Fatal("evaluators should share the snapshot")
	}
	seq := problem.IdentitySequence(5)
	if a, b := e1.Cost(seq), e2.Cost(seq); a != b || a != 77 {
		t.Errorf("shared-snapshot costs %d, %d, want 77", a, b)
	}
}

// TestBatchEvaluatorRejectsBadIndex pins the memory-safety contract of
// the unchecked-gather CDD row core: a row holding a job index outside
// [0, n) must panic before any unchecked load, matching the safe path's
// out-of-range panic.
func TestBatchEvaluatorRejectsBadIndex(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	be := NewBatchEvaluator(in)
	for _, bad := range [][]int{{0, 1, 2, 3, 5}, {0, 1, 2, 3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("row %v: batch cost did not panic", bad)
				}
			}()
			be.CostRows(bad, make([]int64, 1))
		}()
	}
}

// batchInstanceFromBytes decodes a fuzzer payload into a valid instance
// of either kind: five bytes per job (p, α, β, m-fraction, γ). The due
// date derives from dRaw — for CDD within [0, 2·ΣP+1] (restrictive
// allowed), for UCDDCP within [ΣP, 2·ΣP] (the kind requires d ≥ ΣP).
// Returns nil when the payload is too short for one job.
func batchInstanceFromBytes(kind problem.Kind, data []byte, dRaw uint64) *problem.Instance {
	n := len(data) / 5
	if n < 1 {
		return nil
	}
	if n > 16 {
		n = 16
	}
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	m := make([]int, n)
	gamma := make([]int, n)
	var sum uint64
	for i := 0; i < n; i++ {
		p[i] = 1 + int(data[5*i]%20)
		alpha[i] = int(data[5*i+1] % 11)
		beta[i] = int(data[5*i+2] % 16)
		m[i] = 1 + int(data[5*i+3])%p[i]
		gamma[i] = int(data[5*i+4] % 13)
		sum += uint64(p[i])
	}
	var in *problem.Instance
	var err error
	if kind == problem.CDD {
		in, err = problem.NewCDD("fuzz-cdd", p, alpha, beta, int64(dRaw%(2*sum+2)))
	} else {
		in, err = problem.NewUCDDCP("fuzz-ucddcp", p, m, alpha, beta, gamma, int64(sum+dRaw%(sum+1)))
	}
	if err != nil {
		panic(err) // valid by construction
	}
	return in
}

// FuzzBatchEvaluator feeds fuzzer-chosen instances of both kinds and
// random sequence batches through every batch face and cross-checks
// costs (and FitnessRows32 op counts) against the per-sequence
// OptimizeArrays path. The batch core promises bit-identical results;
// any divergence is a bug in the batch row kernels.
func FuzzBatchEvaluator(f *testing.F) {
	f.Add([]byte{6, 7, 9, 2, 4, 5, 9, 5, 1, 8, 2, 6, 4, 3, 0}, uint64(16), uint64(1))
	f.Add([]byte{1, 0, 1, 0, 2, 1, 1, 0, 1, 3, 20, 10, 15, 19, 7}, uint64(0), uint64(7))
	f.Add([]byte{5, 3, 3, 4, 9, 5, 3, 3, 2, 1}, uint64(15), uint64(5))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, seed uint64) {
		rng := xrand.New(seed | 1)
		for _, kind := range []problem.Kind{problem.CDD, problem.UCDDCP} {
			in := batchInstanceFromBytes(kind, data, dRaw)
			if in == nil {
				t.Skip("payload too short for one job")
			}
			n := in.N()
			b := 1 + rng.Intn(5)
			seqs := make([][]int, b)
			for i := range seqs {
				seqs[i] = perm.Random(rng, n)
			}
			checkBatchAgainstSingle(t, in, seqs)
		}
	})
}
