package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/problem"
	"repro/internal/xrand"
)

func TestNewEvaluatorDispatch(t *testing.T) {
	cddEval := NewEvaluator(problem.PaperExample(problem.CDD))
	if got := cddEval.Cost(problem.IdentitySequence(5)); got != 81 {
		t.Errorf("CDD evaluator cost = %d, want 81", got)
	}
	uEval := NewEvaluator(problem.PaperExample(problem.UCDDCP))
	if got := uEval.Cost(problem.IdentitySequence(5)); got != 77 {
		t.Errorf("UCDDCP evaluator cost = %d, want 77", got)
	}
}

func TestInitialTemperature(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := NewEvaluator(in)
	t0 := InitialTemperature(eval, xrand.New(1), 2000)
	if t0 <= 0 {
		t.Fatalf("T0 = %v, want > 0", t0)
	}
	// Deterministic for a fixed stream.
	if again := InitialTemperature(NewEvaluator(in), xrand.New(1), 2000); again != t0 {
		t.Errorf("T0 not deterministic: %v vs %v", t0, again)
	}
	// Different samples change the estimate (different draws), but stay
	// the same order of magnitude as the fitness spread.
	small := InitialTemperature(NewEvaluator(in), xrand.New(2), 50)
	if small <= 0 || small > 100*t0 {
		t.Errorf("small-sample T0 implausible: %v (full %v)", small, t0)
	}
}

func TestInitialTemperatureDegenerate(t *testing.T) {
	// One job: every sequence identical, stddev 0 → fallback T0 = 1.
	in, err := problem.NewCDD("one", []int{3}, []int{2}, []int{2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if t0 := InitialTemperature(NewEvaluator(in), xrand.New(3), 100); t0 != 1 {
		t.Errorf("degenerate T0 = %v, want fallback 1", t0)
	}
}

func TestRandomSolution(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := NewEvaluator(in)
	seq, cost := RandomSolution(eval, xrand.New(4))
	if !problem.IsPermutation(seq) {
		t.Error("random solution is not a permutation")
	}
	if cost != eval.Cost(seq) {
		t.Errorf("cached cost %d != %d", cost, eval.Cost(seq))
	}
}

func TestPercentDeviation(t *testing.T) {
	cases := []struct {
		z, zBest int64
		want     float64
	}{
		{110, 100, 10},
		{95, 100, -5},
		{100, 100, 0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := PercentDeviation(c.z, c.zBest); got != c.want {
			t.Errorf("PercentDeviation(%d,%d) = %v, want %v", c.z, c.zBest, got, c.want)
		}
	}
	if !math.IsInf(PercentDeviation(5, 0), 1) {
		t.Error("z>0 with zBest=0 should be +Inf")
	}
}

type fixedSolver struct {
	name string
	cost int64
}

func (f fixedSolver) Name() string { return f.name }
func (f fixedSolver) Solve(ctx context.Context, in *problem.Instance) (Result, error) {
	return Result{BestCost: f.cost, BestSeq: []int{0}}, nil
}

func TestBestOf(t *testing.T) {
	idx, best, err := BestOf(context.Background(), nil, fixedSolver{"a", 30}, fixedSolver{"b", 10}, fixedSolver{"c", 20})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || best.BestCost != 10 {
		t.Errorf("BestOf picked %d (%d), want 1 (10)", idx, best.BestCost)
	}
	if _, _, err := BestOf(context.Background(), nil); err == nil {
		t.Error("BestOf() with no solvers should error")
	}
}

func TestResultSchedule(t *testing.T) {
	in := problem.PaperExample(problem.UCDDCP)
	res := Result{BestSeq: problem.IdentitySequence(5), BestCost: 77}
	sched := res.Schedule(in)
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := sched.Cost(in); got != 77 {
		t.Errorf("materialized schedule costs %d, want 77", got)
	}
	if sched.X == nil {
		t.Error("UCDDCP schedule should carry compressions")
	}

	inC := problem.PaperExample(problem.CDD)
	resC := Result{BestSeq: problem.IdentitySequence(5), BestCost: 81}
	schedC := resC.Schedule(inC)
	if got := schedC.Cost(inC); got != 81 {
		t.Errorf("CDD schedule costs %d, want 81", got)
	}
	if schedC.X != nil {
		t.Error("CDD schedule should not carry compressions")
	}
}
