package core

import (
	"repro/internal/cdd"
	"repro/internal/earlywork"
	"repro/internal/problem"
	"repro/internal/ucddcp"
)

// Genome scoring: the machine-aware evaluation core for parallel-machine
// instances. A solution is a delimiter genome (see problem.GenomeLen) — a
// permutation of n job ids plus m−1 separator values ≥ n — and its cost
// is the sum of the per-machine objectives, each machine's run of job
// values scored by the same exact O(n) single-machine cores the
// single-machine path uses (cdd.CostArrays / ucddcp.OptimizeArrays /
// earlywork.CostArrays on the segment sub-slice against the job-indexed
// parameter columns). Single-machine instances never reach these
// functions: their genome is the plain sequence and the dispatchers keep
// them on the pre-generalization kernels, bit-identical by construction.

// GenomeCostArrays returns the total cost of a delimiter genome over the
// snapshot: the sum of per-machine segment costs. comp and aux are
// caller-provided scratch of length ≥ s.N (aux may be nil for non-UCDDCP
// kinds).
func GenomeCostArrays[S cdd.Index](seq []S, s *SoAInstance, comp, aux []int64) int64 {
	var total int64
	lo := 0
	for i := 0; i <= len(seq); i++ {
		if i < len(seq) && int(seq[i]) < s.N {
			continue
		}
		total += segmentCost(seq[lo:i], s, comp, aux)
		lo = i + 1
	}
	return total
}

// GenomeFitnessArrays is GenomeCostArrays with the abstract operation
// count the simulated GPU converts into cycle charges (the sum of the
// per-segment kernel counts plus one op per separator scan).
func GenomeFitnessArrays[S cdd.Index](seq []S, s *SoAInstance, comp, aux []int64) (cost int64, ops int) {
	lo := 0
	for i := 0; i <= len(seq); i++ {
		if i < len(seq) && int(seq[i]) < s.N {
			continue
		}
		c, o := segmentFitness(seq[lo:i], s, comp, aux)
		cost += c
		ops += o + 1
		lo = i + 1
	}
	return cost, ops
}

// segmentCost scores one machine's job run with the kind's exact
// single-machine core.
func segmentCost[S cdd.Index](seg []S, s *SoAInstance, comp, aux []int64) int64 {
	if len(seg) == 0 {
		return 0
	}
	switch s.Kind {
	case problem.UCDDCP:
		c, _, _, _ := ucddcp.OptimizeArrays(seg, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, comp[:len(seg)], aux[:len(seg)], nil)
		return c
	case problem.EARLYWORK:
		return earlywork.CostArrays(seg, s.P, s.D)
	default:
		return cdd.CostArrays(seg, s.P, s.Alpha, s.Beta, s.D)
	}
}

// segmentFitness is segmentCost with the kernel's abstract op count.
func segmentFitness[S cdd.Index](seg []S, s *SoAInstance, comp, aux []int64) (int64, int) {
	if len(seg) == 0 {
		return 0, 0
	}
	switch s.Kind {
	case problem.UCDDCP:
		c, _, _, o := ucddcp.OptimizeArrays(seg, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, comp[:len(seg)], aux[:len(seg)], nil)
		return c, o
	case problem.EARLYWORK:
		return earlywork.FitnessArrays(seg, s.P, s.D)
	default:
		c, _, _, o := cdd.OptimizeArrays(seg, s.P, s.Alpha, s.Beta, s.D, comp[:len(seg)])
		return c, o
	}
}

// GenomeSchedule materializes a genome into a fully timed schedule: the
// machine-major job order, the per-job machine assignment, each machine's
// optimal start time, and (for UCDDCP) the merged per-job compressions.
// For single-machine instances it reduces to the kind's OptimizeSequence
// with nil Assign/Starts, so the schedule wire form is unchanged.
func GenomeSchedule(in *problem.Instance, genome []int) problem.Schedule {
	if in.MachineCount() == 1 {
		switch in.Kind {
		case problem.UCDDCP:
			opt := ucddcp.OptimizeSequence(in, genome)
			return problem.Schedule{Seq: genome, Start: opt.Start, X: opt.X}
		case problem.EARLYWORK:
			return problem.Schedule{Seq: genome}
		default:
			opt := cdd.OptimizeSequence(in, genome)
			return problem.Schedule{Seq: genome, Start: opt.Start}
		}
	}
	s := NewSoAInstance(in)
	segs := in.SplitGenome(genome)
	order, assign := in.GenomeAssignment(genome)
	starts := make([]int64, len(segs))
	var x []int64
	if in.Kind == problem.UCDDCP {
		x = make([]int64, s.N)
	}
	comp := make([]int64, s.N)
	aux := make([]int64, s.N)
	for k, seg := range segs {
		if len(seg) == 0 {
			continue
		}
		switch in.Kind {
		case problem.UCDDCP:
			_, start, _, _ := ucddcp.OptimizeArrays(seg, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, comp[:len(seg)], aux[:len(seg)], x)
			starts[k] = start
		case problem.EARLYWORK:
			// Late work is minimized by starting at 0.
		default:
			_, start, _, _ := cdd.OptimizeArrays(seg, s.P, s.Alpha, s.Beta, s.D, comp[:len(seg)])
			starts[k] = start
		}
	}
	return problem.Schedule{Seq: order, Starts: starts, X: x, Assign: assign}
}
