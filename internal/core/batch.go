package core

import (
	"repro/internal/cdd"
	"repro/internal/problem"
	"repro/internal/ucddcp"
)

// This file is the batch evaluation layer: a structure-of-arrays
// snapshot of the instance (SoAInstance) plus an evaluator that scores
// whole populations of sequences per call (BatchEvaluator). The batch
// kernels in internal/cdd and internal/ucddcp run each row through the
// exact single-row array cores over hoisted SoA columns, so a batch
// call beats B single Cost calls on throughput by amortizing per-call
// dispatch, Result building and scratch setup while remaining
// bit-identical by construction — the invariant every consumer (the
// ensemble runtime's per-chain scoring, the cudasim fitness kernel,
// DPSO's population evaluation) relies on and the verify oracle chain
// enforces.

// SoAInstance is a structure-of-arrays snapshot of one instance's job
// parameters: every per-job column widened to int64 and packed into a
// single contiguous backing array, hoisted once per solve so the batch
// kernels sweep cache-dense columns instead of pointer-chasing
// problem.Job structs. Columns are indexed by job id. M and Gamma are
// nil for CDD instances.
type SoAInstance struct {
	// Kind is the problem kind the snapshot was taken for.
	Kind problem.Kind
	// N is the job count; D the common due date.
	N int
	D int64
	// Machines is the normalized machine count and L the genome length
	// N + Machines − 1 (the row stride of batch layouts; L == N on
	// single-machine instances).
	Machines, L int
	// P, Alpha, Beta are the processing-time and penalty columns.
	P, Alpha, Beta []int64
	// M, Gamma are the minimum-processing-time and compression-penalty
	// columns (UCDDCP only; nil for CDD).
	M, Gamma []int64
}

// NewSoAInstance hoists the instance's job parameters into one
// contiguous structure-of-arrays snapshot.
func NewSoAInstance(in *problem.Instance) *SoAInstance {
	n := in.N()
	s := &SoAInstance{Kind: in.Kind, N: n, D: in.D, Machines: in.MachineCount(), L: in.GenomeLen()}
	cols := 3
	if in.Kind == problem.UCDDCP {
		cols = 5
	}
	back := make([]int64, cols*n)
	s.P, s.Alpha, s.Beta = back[0:n:n], back[n:2*n:2*n], back[2*n:3*n:3*n]
	for i, j := range in.Jobs {
		s.P[i], s.Alpha[i], s.Beta[i] = int64(j.P), int64(j.Alpha), int64(j.Beta)
	}
	if in.Kind == problem.UCDDCP {
		s.M, s.Gamma = back[3*n:4*n:4*n], back[4*n:5*n:5*n]
		for i, j := range in.Jobs {
			s.M[i], s.Gamma[i] = int64(j.M), int64(j.Gamma)
		}
	}
	return s
}

// genomeCoded reports whether solutions for this snapshot are delimiter
// genomes scored machine-by-machine instead of single sequences on the
// pre-generalization kernels: any multi-machine instance, plus EARLYWORK
// (whose per-job columns carry no E/T penalties and whose cost is the
// late-work closed form even on one machine).
func (s *SoAInstance) genomeCoded() bool {
	return s.Machines > 1 || s.Kind == problem.EARLYWORK
}

// BatchEvaluator scores batches of sequences against one SoAInstance
// snapshot: B sequences per call through the batch array kernels, with
// costs bit-identical to Evaluator.Cost on each row. It
// also implements Evaluator (Cost is the batch of one, on the same
// kernels). A BatchEvaluator carries scratch and is not safe for
// concurrent use; create one per goroutine.
type BatchEvaluator struct {
	in  *problem.Instance
	soa *SoAInstance
	// comp is the completion-time scratch row (n); aux is the UCDDCP
	// compression phase's early-side buffer (n, nil for CDD).
	comp, aux []int64
}

// NewBatchEvaluator snapshots the instance and returns a batch evaluator
// for it.
func NewBatchEvaluator(in *problem.Instance) *BatchEvaluator {
	return NewBatchEvaluatorSoA(in, NewSoAInstance(in))
}

// NewBatchEvaluatorSoA returns a batch evaluator over an existing
// snapshot, so many evaluators (one per goroutine) can share one hoisted
// copy of the instance data.
func NewBatchEvaluatorSoA(in *problem.Instance, soa *SoAInstance) *BatchEvaluator {
	e := &BatchEvaluator{in: in, soa: soa, comp: make([]int64, soa.N)}
	if soa.Kind == problem.UCDDCP {
		e.aux = make([]int64, soa.N)
	}
	return e
}

// BatchEvaluatorFor adapts an existing evaluator to the batch API:
// a BatchEvaluator passes through unchanged, anything else gets a fresh
// snapshot of its instance.
func BatchEvaluatorFor(eval Evaluator) *BatchEvaluator {
	if be, ok := eval.(*BatchEvaluator); ok {
		return be
	}
	return NewBatchEvaluator(eval.Instance())
}

// Instance implements Evaluator.
func (e *BatchEvaluator) Instance() *problem.Instance { return e.in }

// SoA returns the underlying snapshot (shared, read-only by convention).
func (e *BatchEvaluator) SoA() *SoAInstance { return e.soa }

// Cost implements Evaluator: the batch of one, evaluated on the same
// array kernels (for UCDDCP this skips the per-call compression-vector
// zeroing of the Result-building path). On genome-coded snapshots seq is
// a delimiter genome and the cost is the sum of per-machine segment
// costs.
func (e *BatchEvaluator) Cost(seq []int) int64 {
	s := e.soa
	if s.genomeCoded() {
		return GenomeCostArrays(seq, s, e.comp, e.aux)
	}
	if s.Kind == problem.UCDDCP {
		c, _, _, _ := ucddcp.OptimizeArrays(seq, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, e.comp, e.aux, nil)
		return c
	}
	return cdd.CostRowArrays(seq, s.P, s.Alpha, s.Beta, s.D)
}

// CostRows scores B = len(costs) sequences stored row-major in rows
// (len(rows) ≥ B·L) into costs — the flat layout the simulated GPU
// pipeline keeps its population in. The row stride is the genome length
// L (equal to N on single-machine instances).
func (e *BatchEvaluator) CostRows(rows []int, costs []int64) {
	s := e.soa
	if s.genomeCoded() {
		for i := range costs {
			costs[i] = GenomeCostArrays(rows[i*s.L:(i+1)*s.L], s, e.comp, e.aux)
		}
		return
	}
	if s.Kind == problem.UCDDCP {
		ucddcp.BatchCostArrays(rows, s.N, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, e.comp, e.aux, costs)
		return
	}
	cdd.BatchCostArrays(rows, s.N, s.P, s.Alpha, s.Beta, s.D, costs)
}

// CostRows32 is CostRows for int32 rows (the device sequence layout).
func (e *BatchEvaluator) CostRows32(rows []int32, costs []int64) {
	s := e.soa
	if s.genomeCoded() {
		for i := range costs {
			costs[i] = GenomeCostArrays(rows[i*s.L:(i+1)*s.L], s, e.comp, e.aux)
		}
		return
	}
	if s.Kind == problem.UCDDCP {
		ucddcp.BatchCostArrays(rows, s.N, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, e.comp, e.aux, costs)
		return
	}
	cdd.BatchCostArrays(rows, s.N, s.P, s.Alpha, s.Beta, s.D, costs)
}

// CostSeqs scores seqs[i] into costs[i] (len(costs) = len(seqs)) without
// requiring the sequences to be materialized into one flat matrix — the
// layout population metaheuristics like DPSO hold their particles in.
func (e *BatchEvaluator) CostSeqs(seqs [][]int, costs []int64) {
	for i := range costs {
		costs[i] = e.Cost(seqs[i])
	}
}

// FitnessRows32 scores B = len(costs) device rows and records each row's
// abstract operation count into ops — the quantity the simulated GPU
// converts into cycle charges, bit-identical to the per-thread
// OptimizeArrays path it replaces.
func (e *BatchEvaluator) FitnessRows32(rows []int32, costs []int64, ops []int) {
	s := e.soa
	if s.genomeCoded() {
		for i := range costs {
			costs[i], ops[i] = GenomeFitnessArrays(rows[i*s.L:(i+1)*s.L], s, e.comp, e.aux)
		}
		return
	}
	if s.Kind == problem.UCDDCP {
		ucddcp.BatchFitnessArrays(rows, s.N, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, e.comp, e.aux, costs, ops)
		return
	}
	cdd.BatchFitnessArrays(rows, s.N, s.P, s.Alpha, s.Beta, s.D, e.comp, costs, ops)
}
