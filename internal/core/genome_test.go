package core

import (
	"fmt"
	"testing"

	"repro/internal/perm"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// genInstance builds a random valid instance of the given kind on m
// machines (UCDDCP gets d ≥ ΣP so every possible machine segment stays
// unrestricted).
func genInstance(t *testing.T, r *xrand.XORWOW, kind problem.Kind, n, m int) *problem.Instance {
	t.Helper()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + r.Intn(12)
		alpha[i] = r.Intn(8)
		beta[i] = r.Intn(8)
		sum += int64(p[i])
	}
	var in *problem.Instance
	var err error
	switch kind {
	case problem.UCDDCP:
		mi := make([]int, n)
		gamma := make([]int, n)
		for i := 0; i < n; i++ {
			mi[i] = 1 + r.Intn(p[i])
			gamma[i] = r.Intn(6)
		}
		in, err = problem.NewUCDDCP("gen-ucddcp", p, mi, alpha, beta, gamma, sum+int64(r.Intn(int(sum)+1)))
	case problem.EARLYWORK:
		in, err = problem.NewEarlyWork("gen-ew", p, m, 1+int64(r.Intn(int(sum))))
	default:
		in, err = problem.NewCDD("gen-cdd", p, alpha, beta, int64(r.Intn(int(2*sum))))
	}
	if err != nil {
		t.Fatal(err)
	}
	in.Machines = m
	return in
}

func randomGenome(r *xrand.XORWOW, L int) []int {
	g := problem.IdentitySequence(L)
	perm.FisherYates(r, g)
	return g
}

// TestGenomeCostMatchesSchedule cross-checks the genome scoring core
// against the materialized schedule on every kind and machine count: the
// segment-sum cost must equal the exact objective of the fully timed
// schedule, and the schedule must validate.
func TestGenomeCostMatchesSchedule(t *testing.T) {
	r := xrand.New(21)
	kinds := []problem.Kind{problem.CDD, problem.UCDDCP, problem.EARLYWORK}
	for trial := 0; trial < 300; trial++ {
		kind := kinds[trial%3]
		n := 1 + r.Intn(7)
		m := 1 + r.Intn(3)
		in := genInstance(t, r, kind, n, m)
		s := NewSoAInstance(in)
		comp := make([]int64, s.N)
		aux := make([]int64, s.N)
		genome := randomGenome(r, in.GenomeLen())

		got := GenomeCostArrays(genome, s, comp, aux)
		fit, ops := GenomeFitnessArrays(genome, s, comp, aux)
		if fit != got {
			t.Fatalf("%s m=%d: fitness %d != cost %d", kind, m, fit, got)
		}
		if ops <= 0 {
			t.Fatalf("%s m=%d: non-positive op count %d", kind, m, ops)
		}

		sched := GenomeSchedule(in, genome)
		if err := sched.Validate(in); err != nil {
			t.Fatalf("%s m=%d: schedule invalid: %v (genome %v)", kind, m, err, genome)
		}
		if want := sched.Cost(in); got != want {
			t.Fatalf("%s m=%d: genome cost %d != schedule cost %d (genome %v)", kind, m, got, want, genome)
		}
	}
}

// TestMachineDeltaMatchesFull drives the incremental evaluator through
// a propose/commit walk of assignment moves and window rewrites; every
// proposal must price exactly like a from-scratch genome evaluation,
// both when committed and when abandoned.
func TestMachineDeltaMatchesFull(t *testing.T) {
	r := xrand.New(33)
	kinds := []problem.Kind{problem.CDD, problem.UCDDCP, problem.EARLYWORK}
	for trial := 0; trial < 60; trial++ {
		kind := kinds[trial%3]
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(3)
		if kind != problem.EARLYWORK && m == 1 {
			m = 2 // the delta evaluator targets genome-coded instances
		}
		in := genInstance(t, r, kind, n, m)
		e := NewMachineDeltaEvaluator(in)
		L := in.GenomeLen()
		base := randomGenome(r, L)
		total := e.Reset(base)
		if full := e.Cost(base); full != total {
			t.Fatalf("%s m=%d: Reset %d != full %d", kind, m, total, full)
		}
		ops := perm.NewOps(L)
		cand := make([]int, L)
		for step := 0; step < 40; step++ {
			copy(cand, base)
			var positions []int
			switch step % 3 {
			case 0:
				lo, hi := perm.JobReassign(r, cand, n)
				for p := lo; p <= hi; p++ {
					positions = append(positions, p)
				}
			case 1:
				i, j := ops.CrossMachineSwap(r, cand, n)
				if i != j {
					positions = []int{i, j}
				}
			default:
				if L >= 2 {
					i := r.Intn(L - 1)
					cand[i], cand[i+1] = cand[i+1], cand[i]
					positions = []int{i, i + 1}
				}
			}
			got := e.Propose(cand, positions)
			want := GenomeCostArrays(cand, e.soa, make([]int64, n), make([]int64, n))
			if got != want {
				t.Fatalf("%s m=%d step %d: Propose %d != full %d\nbase %v\ncand %v (positions %v)",
					kind, m, step, got, want, base, cand, positions)
			}
			if step%2 == 0 {
				e.Commit()
				copy(base, cand)
				total = got
			} else if again := e.Propose(cand, positions); again != want {
				// An abandoned proposal must not corrupt the cache.
				t.Fatalf("%s m=%d step %d: re-Propose after abandon %d != %d", kind, m, step, again, want)
			}
		}
		if full := e.Cost(base); full != total {
			t.Fatalf("%s m=%d: committed total %d drifted from full %d", kind, m, total, full)
		}
	}
}

// TestMachinesZeroOneBitIdentical pins the reduction guarantee at the
// evaluator level: an instance with the Machines zero value and its
// explicit Machines = 1 clone produce identical costs and schedules —
// the generalized stack collapses onto the paper's single-machine path.
func TestMachinesZeroOneBitIdentical(t *testing.T) {
	r := xrand.New(55)
	for trial := 0; trial < 60; trial++ {
		kind := []problem.Kind{problem.CDD, problem.UCDDCP}[trial%2]
		n := 1 + r.Intn(7)
		zero := genInstance(t, r, kind, n, 1)
		zero.Machines = 0
		one := zero.Clone()
		one.Machines = 1
		seq := randomGenome(r, n)
		ez, eo := NewEvaluator(zero), NewEvaluator(one)
		if cz, co := ez.Cost(seq), eo.Cost(seq); cz != co {
			t.Fatalf("%s: Machines=0 cost %d != Machines=1 cost %d", kind, cz, co)
		}
		sz, so := GenomeSchedule(zero, seq), GenomeSchedule(one, seq)
		if fmt.Sprintf("%+v", sz) != fmt.Sprintf("%+v", so) {
			t.Fatalf("%s: schedules differ:\nMachines=0 %+v\nMachines=1 %+v", kind, sz, so)
		}
	}
}
