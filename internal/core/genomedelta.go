package core

import "repro/internal/problem"

// MachineDeltaEvaluator is the incremental propose/commit evaluator for
// genome-coded instances (parallel machines and EARLYWORK). It caches the
// committed genome together with its per-machine segment costs and prices
// a move at machine granularity: a move touching positions [lo, hi] can
// only change the machines whose segments intersect that window, so only
// those segments are rescored with the exact single-machine cores —
// O(window + affected segment lengths), about 2n/m per small move —
// while every other machine keeps its cached cost.
//
// The machine-range bound relies on the delta contract: the candidate
// equals the base genome outside the touched positions, so the candidate
// permutes the same value multiset inside the window. The separator
// count of every prefix that fully contains or fully excludes the window
// is therefore identical in base and candidate, which pins the machine
// index of every position outside the window and bounds the affected
// machines by the base's separator ranks at the window edges.
type MachineDeltaEvaluator struct {
	in  *problem.Instance
	soa *SoAInstance
	// comp/aux are the single-machine kernels' scratch (length N).
	comp, aux []int64

	base    []int   // committed genome
	segCost []int64 // committed per-machine segment costs
	total   int64   // committed total cost
	// sepsBefore[i] counts separators in base[0:i] — the machine rank of
	// position i. sepRank[r] is the position of the r-th separator in
	// position order (machine r ends there).
	sepsBefore []int
	sepRank    []int

	// Pending proposal: the touched window, the affected machine range,
	// the rescored segment costs and separator positions, and a copy of
	// the candidate window for Commit.
	pLo, pHi         int
	pSegLo, pSegHi   int
	pSeg             []int64
	pSepRank         []int
	pWin             []int
	pDelta           int64
	pending, pNoop bool
}

// NewMachineDeltaEvaluator builds the evaluator for a genome-coded
// instance (it also accepts single-machine EARLYWORK, where the single
// segment is the whole genome).
func NewMachineDeltaEvaluator(in *problem.Instance) *MachineDeltaEvaluator {
	soa := NewSoAInstance(in)
	e := &MachineDeltaEvaluator{
		in:         in,
		soa:        soa,
		comp:       make([]int64, soa.N),
		base:       make([]int, soa.L),
		segCost:    make([]int64, soa.Machines),
		sepsBefore: make([]int, soa.L+1),
		sepRank:    make([]int, soa.Machines-1),
		pSeg:       make([]int64, soa.Machines),
		pSepRank:   make([]int, soa.Machines-1),
		pWin:       make([]int, soa.L),
	}
	if soa.Kind == problem.UCDDCP {
		e.aux = make([]int64, soa.N)
	}
	return e
}

// Instance implements Evaluator.
func (e *MachineDeltaEvaluator) Instance() *problem.Instance { return e.in }

// Cost implements Evaluator: a stateless full genome evaluation that
// never disturbs the committed cache.
func (e *MachineDeltaEvaluator) Cost(seq []int) int64 {
	return GenomeCostArrays(seq, e.soa, e.comp, e.aux)
}

// Reset caches seq as the committed base genome and returns its cost.
func (e *MachineDeltaEvaluator) Reset(seq []int) int64 {
	copy(e.base, seq)
	e.pending = false
	n := e.soa.N
	e.total = 0
	k := 0
	lo := 0
	for i := 0; i <= len(e.base); i++ {
		e.sepsBefore[i] = k
		if i == len(e.base) || e.base[i] < n {
			continue
		}
		c := segmentCost(e.base[lo:i], e.soa, e.comp, e.aux)
		e.segCost[k] = c
		e.total += c
		e.sepRank[k] = i
		k++
		lo = i + 1
	}
	c := segmentCost(e.base[lo:], e.soa, e.comp, e.aux)
	e.segCost[k] = c
	e.total += c
	return e.total
}

// segStart returns the base position where machine k's segment begins.
func (e *MachineDeltaEvaluator) segStart(k int) int {
	if k == 0 {
		return 0
	}
	return e.sepRank[k-1] + 1
}

// Propose evaluates a candidate genome that differs from the base only at
// (a subset of) the given positions, rescoring exactly the machines whose
// segments intersect the touched window.
func (e *MachineDeltaEvaluator) Propose(cand []int, positions []int) int64 {
	if len(positions) == 0 {
		e.pending, e.pNoop = true, true
		return e.total
	}
	lo, hi := positions[0], positions[0]
	for _, p := range positions[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	n := e.soa.N
	segLo := e.sepsBefore[lo]
	segHi := e.sepsBefore[hi+1]
	start := e.segStart(segLo)
	var delta int64
	i, segStart, k := start, start, segLo
	for {
		if i == len(cand) || cand[i] >= n {
			c := segmentCost(cand[segStart:i], e.soa, e.comp, e.aux)
			e.pSeg[k] = c
			delta += c - e.segCost[k]
			if i < len(cand) {
				e.pSepRank[k] = i
			}
			k++
			segStart = i + 1
			if k > segHi {
				break
			}
		}
		i++
	}
	e.pLo, e.pHi, e.pSegLo, e.pSegHi = lo, hi, segLo, segHi
	copy(e.pWin[:hi-lo+1], cand[lo:hi+1])
	e.pDelta = delta
	e.pending, e.pNoop = true, false
	return e.total + delta
}

// Commit adopts the pending candidate as the new base genome, updating
// the cached segment costs, separator ranks and prefix counts for the
// touched window only.
func (e *MachineDeltaEvaluator) Commit() {
	if !e.pending {
		panic("core: MachineDeltaEvaluator.Commit without a pending Propose")
	}
	e.pending = false
	if e.pNoop {
		return
	}
	lo, hi := e.pLo, e.pHi
	copy(e.base[lo:hi+1], e.pWin[:hi-lo+1])
	for k := e.pSegLo; k <= e.pSegHi; k++ {
		e.segCost[k] = e.pSeg[k]
		if k < len(e.sepRank) {
			e.sepRank[k] = e.pSepRank[k]
		}
	}
	e.total += e.pDelta
	n := e.soa.N
	for i := lo + 1; i <= hi+1; i++ {
		c := e.sepsBefore[i-1]
		if e.base[i-1] >= n {
			c++
		}
		e.sepsBefore[i] = c
	}
}
