package core

import "time"

// MetricsLevel selects how much instrumentation a solver collects.
// Collection is opt-in: the zero value disables it entirely, so the hot
// path of an uninstrumented run pays only a nil check.
type MetricsLevel int

const (
	// MetricsOff collects nothing; Result.Metrics stays nil.
	MetricsOff MetricsLevel = iota
	// MetricsCounters collects the cheap per-chain counters (evaluations,
	// delta vs. full splits, acceptances, best-improvements) and the
	// ensemble aggregates, but no per-phase timers.
	MetricsCounters
	// MetricsKernels additionally times every phase/kernel: host
	// wall-clock per launch plus the simulated device seconds between the
	// cudasim events bracketing it.
	MetricsKernels
)

// String implements fmt.Stringer.
func (l MetricsLevel) String() string {
	switch l {
	case MetricsOff:
		return "off"
	case MetricsCounters:
		return "counters"
	case MetricsKernels:
		return "kernels"
	default:
		return "MetricsLevel(" + itoa(int(l)) + ")"
	}
}

// itoa avoids pulling strconv into the hot-path package for one
// diagnostic string.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// PhaseMetric is the accounting of one solver phase — one of the paper's
// kernels (perturbation, fitness, acceptance, reduction) or a host-side
// stage (T₀ estimation, chain execution, the persistent kernel).
type PhaseMetric struct {
	// Name identifies the phase ("fitness", "perturb", "t0", …).
	Name string `json:"name"`
	// Wall is the accumulated host wall-clock time across all launches.
	Wall time.Duration `json:"wallNs"`
	// Sim is the accumulated simulated device seconds (zero for phases
	// that never touch the device).
	Sim float64 `json:"simSeconds"`
	// Count is the number of launches/executions of the phase.
	Count int64 `json:"count"`
}

// Metrics is the instrumentation snapshot of one solver run, attached to
// Result.Metrics when the run was configured with a MetricsLevel above
// MetricsOff. Counter fields are exact and deterministic for a fixed
// seed (bit-identical across Workers settings and across engines sharing
// a trajectory); timing fields are measurements and vary run to run.
type Metrics struct {
	// Level is the collection level the run used.
	Level MetricsLevel `json:"level"`
	// Phases holds the per-phase timers, ordered by phase. Only populated
	// at MetricsKernels; Count is maintained at every enabled level.
	Phases []PhaseMetric `json:"phases,omitempty"`
	// Evaluations is the total fitness-function invocation count (equal
	// to Result.Evaluations).
	Evaluations int64 `json:"evaluations"`
	// DeltaEvaluations counts candidates priced through the incremental
	// propose path; FullEvaluations counts full O(n) passes. Engines that
	// do not distinguish report everything as full.
	DeltaEvaluations int64 `json:"deltaEvaluations"`
	FullEvaluations  int64 `json:"fullEvaluations"`
	// Acceptances counts accepted metropolis moves (personal-best
	// refreshes for DPSO); Improvements counts moves that improved a
	// chain's best-so-far.
	Acceptances  int64 `json:"acceptances"`
	Improvements int64 `json:"improvements"`
	// Chains is the ensemble size (threads on the GPU engines) and
	// Workers the host goroutine bound the run was configured with.
	Chains  int `json:"chains"`
	Workers int `json:"workers"`
	// WorkerBusy is the summed busy time of all chain executions;
	// Utilization is WorkerBusy/(Workers·Elapsed), the fraction of the
	// worker pool kept busy (zero when untracked).
	WorkerBusy  time.Duration `json:"workerBusyNs"`
	Utilization float64       `json:"utilization"`
	// InterruptedAt names the boundary the run stopped at when it was cut
	// short ("chain", "level", "generation", "iteration",
	// "kernel-iteration"); empty for completed runs.
	InterruptedAt string `json:"interruptedAt,omitempty"`
	// AutoPick names the pairing the AUTO meta-driver dispatched to
	// ("EXACT-DP/cpu-serial", "SA/cpu-parallel", …); empty outside AUTO
	// runs.
	AutoPick string `json:"autoPick,omitempty"`
	// RaceCandidates lists the candidate pairings an AUTO race launched,
	// in launch order; empty when the calibration model picked directly.
	RaceCandidates []string `json:"raceCandidates,omitempty"`
	// RaceWinner names the candidate whose best-so-far won the race, and
	// RaceReason states why ("leader-at-checkpoint", "best-at-deadline",
	// "dp-certificate", "model-pick").
	RaceWinner string `json:"raceWinner,omitempty"`
	RaceReason string `json:"raceReason,omitempty"`
}

// Phase returns the metric for one phase name (zero value when the phase
// never ran).
func (m *Metrics) Phase(name string) PhaseMetric {
	if m == nil {
		return PhaseMetric{}
	}
	for _, p := range m.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseMetric{}
}
