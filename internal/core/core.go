// Package core ties the two layers of the paper's approach together: it
// dispatches the exact O(n) per-sequence optimizers (layer two) behind a
// single Evaluator interface that every metaheuristic (layer one) consumes,
// and it provides the shared solver vocabulary — results, initial
// temperature estimation, and random-restart utilities.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/cdd"
	"repro/internal/perm"
	"repro/internal/problem"
	"repro/internal/ucddcp"
	"repro/internal/xrand"
)

// Evaluator computes the exact optimal penalty of a job sequence for one
// instance: the CDD or UCDDCP linear algorithm of Section IV. Evaluators
// carry scratch state and are not safe for concurrent use; create one per
// chain/thread with NewEvaluator.
type Evaluator interface {
	// Cost returns the minimal total penalty achievable by the sequence.
	Cost(seq []int) int64
	// Instance returns the instance being optimized.
	Instance() *problem.Instance
}

// NewEvaluator returns the appropriate exact evaluator for the
// instance's problem kind and machine count: the single-machine linear
// algorithms for the paper's problems, or the machine-aware genome
// scorer (a BatchEvaluator over the delimiter encoding) for
// parallel-machine and early-work instances.
func NewEvaluator(in *problem.Instance) Evaluator {
	if in.GenomeCoded() {
		return NewBatchEvaluator(in)
	}
	switch in.Kind {
	case problem.UCDDCP:
		return ucddcp.NewEvaluator(in)
	default:
		return cdd.NewEvaluator(in)
	}
}

// DeltaEvaluator extends Evaluator with the incremental propose/commit
// protocol of the hot path. A metaheuristic caches its current sequence
// with Reset, prices each neighbour with Propose — passing the positions
// its move operator touched, in O(k + log n·log k) for CDD instead of the
// O(n) full pass — and calls Commit exactly when a proposal is accepted.
// Rejected proposals need no bookkeeping; a new Propose simply replaces
// the pending one. Propose costs are bit-identical to Cost on the same
// candidate, so trajectories (and results) are unchanged — only faster.
//
// Cost remains a stateless full evaluation and never disturbs the cache.
// Implementations are not safe for concurrent use.
type DeltaEvaluator interface {
	Evaluator
	// Reset caches seq as the committed base sequence and returns its cost.
	Reset(seq []int) int64
	// Propose evaluates a candidate that equals the base sequence
	// everywhere except (a subset of) the given positions, without
	// mutating the cache. Order, duplicates and untouched entries in
	// positions are all tolerated.
	Propose(cand []int, positions []int) int64
	// Commit adopts the pending candidate as the new base sequence.
	Commit()
}

// NewDeltaEvaluator returns the appropriate incremental evaluator for the
// instance's problem kind and machine count: the single-machine delta
// evaluators for the paper's problems, or the machine-granular
// MachineDeltaEvaluator over the delimiter genome otherwise.
func NewDeltaEvaluator(in *problem.Instance) DeltaEvaluator {
	if in.GenomeCoded() {
		return NewMachineDeltaEvaluator(in)
	}
	switch in.Kind {
	case problem.UCDDCP:
		return ucddcp.NewDeltaEvaluator(in)
	default:
		return cdd.NewDeltaEvaluator(in)
	}
}

// Result is the outcome of one solver run.
type Result struct {
	// BestSeq is the best job sequence found (owned by the result).
	BestSeq []int
	// BestCost is its exact penalty under the instance's objective.
	BestCost int64
	// Iterations is the number of metaheuristic iterations executed.
	Iterations int
	// Evaluations counts fitness-function invocations across all chains.
	Evaluations int64
	// Elapsed is the host wall-clock duration of the run.
	Elapsed time.Duration
	// SimSeconds is the simulated GPU time for device-backed engines
	// (zero for CPU engines).
	SimSeconds float64
	// Interrupted reports that the run was cut short by context
	// cancellation or an expired deadline. BestSeq/BestCost still hold
	// the best solution found before the interruption (engines guarantee
	// a valid permutation even when cancelled before the first chain
	// completes).
	Interrupted bool
	// Optimal reports that BestCost is a proven global optimum — an
	// optimality certificate. Only exact solvers set it (the EXACT-DP
	// driver, after its self-check against the O(n) evaluator);
	// metaheuristics leave it false even when they happen to reach the
	// optimum, because they cannot prove it.
	Optimal bool
	// Metrics holds the run's instrumentation snapshot when the solver
	// was configured with a MetricsLevel above MetricsOff; nil otherwise
	// (the default — collection is opt-in).
	Metrics *Metrics
}

// Schedule materializes the result's genome into a fully timed schedule:
// machine assignment and per-machine starts on parallel-machine
// instances, compressions for UCDDCP, and the plain optimally timed
// sequence on the single-machine paper problems.
func (r *Result) Schedule(in *problem.Instance) problem.Schedule {
	return GenomeSchedule(in, r.BestSeq)
}

// Budget bounds a solver run beyond the algorithm's own configuration.
// The zero value imposes no bound.
type Budget struct {
	// Iterations, when positive, overrides the algorithm config's
	// per-chain iteration count.
	Iterations int
	// Deadline, when nonzero, is the wall-clock cutoff: the engine stops
	// at its next chain/level/iteration boundary past the deadline and
	// returns the best-so-far with Result.Interrupted set.
	Deadline time.Time
}

// Apply derives a context honoring the budget's deadline. The returned
// cancel func must always be called (it is a no-op when no deadline is
// set).
func (b Budget) Apply(ctx context.Context) (context.Context, context.CancelFunc) {
	if b.Deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, b.Deadline)
}

// Snapshot is one progress report from a running solver: the best
// solution found so far with its accounting. The sequence is a copy
// owned by the receiver.
type Snapshot struct {
	BestSeq     []int
	BestCost    int64
	Evaluations int64
	Elapsed     time.Duration
}

// ProgressFunc receives periodic best-so-far snapshots during a solve.
// Engines emit one whenever the ensemble best improves (serialized — the
// callback never runs concurrently with itself) and a final snapshot
// before returning. Callbacks must be fast; they run on the solve path.
type ProgressFunc func(Snapshot)

// Solver is a runnable optimizer configuration: the engine-layer
// contract every driver (CPU serial/parallel ensembles, the four-kernel
// GPU pipeline, the persistent kernel, the TA/ES baselines) implements.
type Solver interface {
	// Name identifies the solver in experiment tables ("SA_1000", …).
	Name() string
	// Solve runs the optimization once on inst and returns its result.
	// Cancellation is cooperative: engines check ctx at chain, level or
	// kernel-iteration boundaries and return the best-so-far with
	// Result.Interrupted set instead of an error. A fixed seed yields
	// bit-identical results whenever ctx never expires.
	Solve(ctx context.Context, inst *problem.Instance) (Result, error)
}

// InitialTemperature estimates T₀ as the standard deviation of the
// fitness values of `samples` uniformly random job sequences, the rule of
// Salamon, Sibani and Frost adopted by the paper (with samples = 5000).
// It is deterministic given the rng. The scoring runs on the batch
// evaluation core (each sample is the previous one reshuffled in place,
// so samples chain and cannot be scored as one flat batch); costs are
// bit-identical to eval.Cost, and the float accumulation order is
// unchanged, so T₀ is too.
func InitialTemperature(eval Evaluator, rng *xrand.XORWOW, samples int) float64 {
	if samples < 2 {
		samples = 2
	}
	be := BatchEvaluatorFor(eval)
	n := eval.Instance().GenomeLen()
	seq := problem.IdentitySequence(n)
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		perm.FisherYates(rng, seq)
		f := float64(be.Cost(seq))
		sum += f
		sumSq += f * f
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)
	if sd <= 0 {
		// Degenerate landscape (all sequences equal): any positive
		// temperature works; pick 1 so exp((E−E')/T) stays defined.
		sd = 1
	}
	return sd
}

// RandomSolution evaluates one uniformly random sequence; solvers use it
// for initialization and tests for baselines.
func RandomSolution(eval Evaluator, rng *xrand.XORWOW) ([]int, int64) {
	seq := perm.Random(rng, eval.Instance().GenomeLen())
	return seq, eval.Cost(seq)
}

// BestOf runs every solver on the instance and returns the index and
// result of the best (lowest-cost) one; it is the reduce step over
// heterogeneous engines. A cancelled context stops the remaining solvers
// at their own chain/level boundaries; results collected so far still
// reduce.
func BestOf(ctx context.Context, inst *problem.Instance, solvers ...Solver) (int, Result, error) {
	if len(solvers) == 0 {
		return 0, Result{}, fmt.Errorf("core: BestOf with no solvers")
	}
	bestIdx := -1
	var best Result
	for i, s := range solvers {
		r, err := s.Solve(ctx, inst)
		if err != nil {
			return 0, Result{}, fmt.Errorf("core: %s: %w", s.Name(), err)
		}
		if bestIdx < 0 || r.BestCost < best.BestCost {
			bestIdx, best = i, r
		}
	}
	return bestIdx, best, nil
}

// PercentDeviation returns 100·(z−zBest)/zBest, the %Δ metric of the
// paper's result tables. A zero zBest with nonzero z yields +Inf; both
// zero yields 0.
func PercentDeviation(z, zBest int64) float64 {
	if zBest == 0 {
		if z == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(z-zBest) / float64(zBest) * 100
}
