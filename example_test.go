package duedate_test

// Runnable godoc examples for the facade. Every exported top-level
// function has one (enforced by `docslint -examples .` in the docs-lint
// CI job); outputs are pinned under fixed seeds, so the examples double
// as smoke tests of the documented behavior. The two Register examples
// have no Output and are therefore compile-checked only — actually
// running them would mutate the process-wide driver registry.

import (
	"context"
	"fmt"
	"time"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/problem"
)

// ExampleSolveContext solves the paper's worked 5-job CDD example with
// the serial SA engine under a fixed seed — the minimal deterministic
// solve.
func ExampleSolveContext() {
	in := duedate.PaperExample(duedate.CDD)
	res, err := duedate.SolveContext(context.Background(), in, duedate.Options{
		Algorithm: duedate.SA, Engine: duedate.EngineCPUSerial,
		Iterations: 200, Grid: 1, Block: 8, TempSamples: 50, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cost:", res.BestCost)
	// Output:
	// cost: 81
}

// ExampleSolveContext_auto routes through the AUTO portfolio driver: on
// a small agreeable instance the calibration gates dispatch EXACT-DP and
// the result carries a machine-checked optimality certificate for free.
func ExampleSolveContext_auto() {
	p := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	w := []int{2, 7, 1, 8, 2, 8, 1, 8, 2, 8}
	in, err := duedate.NewCDDInstance("auto-example", p, w, w, 45)
	if err != nil {
		panic(err)
	}
	res, err := duedate.SolveContext(context.Background(), in, duedate.Options{
		Algorithm: duedate.Auto, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cost:", res.BestCost, "optimal:", res.Optimal)
	// Output:
	// cost: 204 optimal: true
}

// ExampleSolveContext_deadline shows the cooperative wall-clock budget:
// the engine stops at the deadline and returns the honest best-so-far.
func ExampleSolveContext_deadline() {
	in := duedate.PaperExample(duedate.CDD)
	res, err := duedate.SolveContext(context.Background(), in, duedate.Options{
		Algorithm: duedate.SA, Engine: duedate.EngineCPUSerial,
		Seed: 1, Deadline: time.Now().Add(50 * time.Millisecond),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", problem.IsPermutation(res.BestSeq))
	// Output:
	// feasible: true
}

// ExampleSolve is the context-free convenience wrapper.
func ExampleSolve() {
	res, err := duedate.Solve(duedate.PaperExample(duedate.CDD), duedate.Options{
		Algorithm: duedate.ES, Engine: duedate.EngineCPUSerial,
		Iterations: 100, Grid: 1, Block: 8, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cost:", res.BestCost)
	// Output:
	// cost: 81
}

// ExampleNewBatchEvaluator scores a small batch of candidate sequences
// in one call — the zero-alloc path for evaluating populations without
// a full Solve.
func ExampleNewBatchEvaluator() {
	in := duedate.PaperExample(duedate.CDD)
	be := duedate.NewBatchEvaluator(in)
	rows := []int{
		0, 1, 2, 3, 4, // identity (the paper's optimal order)
		4, 3, 2, 1, 0, // reversed
	}
	costs := make([]int64, 2)
	be.CostRows(rows, costs)
	fmt.Println(costs)
	// Output:
	// [81 160]
}

// ExampleCost evaluates one explicit sequence exactly (with the optimal
// idle insertion implied by the model).
func ExampleCost() {
	in := duedate.PaperExample(duedate.CDD)
	c, err := duedate.Cost(in, []int{0, 1, 2, 3, 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(c)
	// Output:
	// 81
}

// ExampleOptimizeSequence recovers the full schedule of a sequence: the
// optimal start time and, on UCDDCP, the per-job compressions.
func ExampleOptimizeSequence() {
	in := duedate.PaperExample(duedate.UCDDCP)
	sched, cost, err := duedate.OptimizeSequence(in, []int{0, 1, 2, 3, 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("cost:", cost, "start:", sched.Start)
	// Output:
	// cost: 77 start: 11
}

// ExamplePaperExample loads the paper's worked Table I instance.
func ExamplePaperExample() {
	in := duedate.PaperExample(duedate.CDD)
	fmt.Println(in.Kind, in.N(), "jobs, d =", in.D)
	// Output:
	// CDD 5 jobs, d = 16
}

// ExampleNewCDDInstance builds a common-due-date instance from parallel
// parameter slices.
func ExampleNewCDDInstance() {
	in, err := duedate.NewCDDInstance("three-jobs",
		[]int{4, 2, 3}, []int{1, 2, 1}, []int{3, 1, 2}, 6)
	if err != nil {
		panic(err)
	}
	c, _ := duedate.Cost(in, []int{1, 0, 2})
	fmt.Println(in.N(), "jobs, cost:", c)
	// Output:
	// 3 jobs, cost: 14
}

// ExampleNewUCDDCPInstance builds a controllable-processing-time
// instance (m holds minimum processing times, gamma the compression
// penalties; d must be unrestricted).
func ExampleNewUCDDCPInstance() {
	in, err := duedate.NewUCDDCPInstance("compressible",
		[]int{4, 2, 3}, []int{2, 1, 2}, []int{1, 2, 1}, []int{3, 1, 2}, []int{2, 2, 2}, 9)
	if err != nil {
		panic(err)
	}
	fmt.Println(in.Kind, in.N(), "jobs")
	// Output:
	// UCDDCP 3 jobs
}

// ExampleNewEarlyWorkInstance builds a parallel-machine early-work
// instance; solutions are delimiter genomes of length n + machines − 1.
func ExampleNewEarlyWorkInstance() {
	in, err := duedate.NewEarlyWorkInstance("two-machines", []int{3, 1, 4, 1}, 2, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(in.N(), "jobs on", in.MachineCount(), "machines, genome length", in.GenomeLen())
	// Output:
	// 4 jobs on 2 machines, genome length 5
}

// ExampleGenerateCDDBenchmark generates the OR-library-style benchmark
// for one size: records × the four restrictive h factors, fully
// deterministic for a fixed seed.
func ExampleGenerateCDDBenchmark() {
	ins, err := duedate.GenerateCDDBenchmark(10, 1, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ins), "instances; first:", ins[0].Name)
	// Output:
	// 4 instances; first: sch10/k0/h0.2
}

// ExampleGenerateUCDDCPBenchmark generates the controllable benchmark
// (unrestricted due dates) for one size.
func ExampleGenerateUCDDCPBenchmark() {
	ins, err := duedate.GenerateUCDDCPBenchmark(10, 2, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ins), "instances; kind:", ins[0].Kind)
	// Output:
	// 2 instances; kind: UCDDCP
}

// ExampleGenerateEarlyWorkBenchmark generates the parallel-machine
// early-work benchmark for one size and machine count.
func ExampleGenerateEarlyWorkBenchmark() {
	ins, err := duedate.GenerateEarlyWorkBenchmark(10, 2, 1, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ins), "instances; machines:", ins[0].MachineCount())
	// Output:
	// 4 instances; machines: 2
}

// ExampleParseAlgorithm parses the textual algorithm spelling used by
// flags and the HTTP API.
func ExampleParseAlgorithm() {
	a, err := duedate.ParseAlgorithm("AUTO")
	if err != nil {
		panic(err)
	}
	fmt.Println(a)
	// Output:
	// AUTO
}

// ExampleParseEngine parses the textual engine spelling.
func ExampleParseEngine() {
	e, err := duedate.ParseEngine("cpu-parallel")
	if err != nil {
		panic(err)
	}
	fmt.Println(e)
	// Output:
	// cpu-parallel
}

// ExampleValidateOptions pre-validates options without running a solve —
// the server uses it to reject doomed async submissions up front.
func ExampleValidateOptions() {
	err := duedate.ValidateOptions(duedate.Options{Grid: -1})
	fmt.Println(err != nil)
	// Output:
	// true
}

// ExamplePairings enumerates the live algorithm×engine registry (sorted,
// the same data GET /v1/pairings serves).
func ExamplePairings() {
	for _, p := range duedate.Pairings() {
		if p.Algorithm == duedate.Auto || p.Algorithm == duedate.ExactDP {
			fmt.Printf("%s/%s machines=%t\n", p.Algorithm, p.Engine, p.Machines)
		}
	}
	// Output:
	// EXACT-DP/cpu-serial machines=true
	// AUTO/cpu-parallel machines=true
}

// ExampleRegisterDriver shows the init-time self-registration hook an
// engine package uses to enroll a pairing. Compile-checked only: running
// it would replace the live SA/cpu-serial driver for the whole process.
func ExampleRegisterDriver() {
	duedate.RegisterDriver(duedate.SA, duedate.EngineCPUSerial, func(o duedate.Options) core.Solver {
		return mySolver{opts: o}
	})
}

// ExampleRegisterDriverCaps registers a pairing with an explicit
// capability surface (problem kinds, parallel-machine support), the way
// the exact layer declares its narrow domain. Compile-checked only.
func ExampleRegisterDriverCaps() {
	duedate.RegisterDriverCaps(duedate.SA, duedate.EngineCPUSerial, func(o duedate.Options) core.Solver {
		return mySolver{opts: o}
	}, []duedate.Kind{duedate.CDD}, false)
}

// mySolver is the stub solver of the Register examples.
type mySolver struct{ opts duedate.Options }

func (mySolver) Name() string { return "example" }
func (mySolver) Solve(ctx context.Context, in *problem.Instance) (core.Result, error) {
	seq := problem.IdentitySequence(in.GenomeLen())
	return core.Result{BestSeq: seq, BestCost: core.NewEvaluator(in).Cost(seq)}, nil
}
