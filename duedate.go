// Package duedate is a Go reproduction of "GPGPU-based Parallel
// Algorithms for Scheduling Against Due Date" (Awasthi, Lässig,
// Leuschner, Weise; IPDPSW/PCO 2016): hybrid two-layered solvers for the
// Common Due-Date problem (CDD) and the Unrestricted Common Due-Date
// problem with Controllable Processing Times (UCDDCP).
//
// The two layers are (i) metaheuristics searching the space of job
// sequences — Simulated Annealing and Discrete Particle Swarm
// Optimization, serial or as parallel ensembles — and (ii) exact O(n)
// linear algorithms that optimally time (and, for UCDDCP, compress) any
// fixed sequence. The paper's CUDA implementation is reproduced on a
// simulated GPU device (internal/cudasim) with the same four-kernel
// pipeline: perturbation, fitness, acceptance, reduction.
//
// Quick start:
//
//	in, _ := duedate.NewCDDInstance("mine", p, alpha, beta, d)
//	res, _ := duedate.SolveContext(ctx, in, duedate.Options{})  // GPU-SA defaults
//	sched := res.Schedule(in)                                   // timed schedule
//
// The experiment harness reproducing the paper's Tables II–V and Figures
// 11–17 lives in cmd/experiments; OR-library-style benchmark instances
// come from GenerateCDDBenchmark / GenerateUCDDCPBenchmark.
package duedate

import (
	"repro/internal/core"
	"repro/internal/orlib"
	"repro/internal/problem"
)

// Kind selects the problem: CDD, UCDDCP or EARLYWORK.
type Kind = problem.Kind

// The two problems of the paper, plus the parallel-machine early-work
// generalization.
const (
	CDD    = problem.CDD
	UCDDCP = problem.UCDDCP
	// EARLYWORK maximizes the total early work on m identical parallel
	// machines against a common due date (internally minimized as total
	// late work; see internal/earlywork). Set Instance.Machines to choose
	// the machine count; solutions are delimiter genomes of length
	// Instance.GenomeLen.
	EARLYWORK = problem.EARLYWORK
)

// Job is one job: processing time, minimum processing time, and the
// earliness/tardiness/compression penalty rates.
type Job = problem.Job

// Instance is a problem instance: jobs plus a common due date.
type Instance = problem.Instance

// Schedule is a fully timed (and, for UCDDCP, compressed) solution.
type Schedule = problem.Schedule

// Result is a solver outcome: best sequence, exact cost, and timing.
type Result = core.Result

// MetricsLevel selects how much instrumentation a solve collects (see
// Options.Metrics); the zero value disables collection.
type MetricsLevel = core.MetricsLevel

// The instrumentation levels, lowest to highest.
const (
	// MetricsOff collects nothing; Result.Metrics stays nil.
	MetricsOff = core.MetricsOff
	// MetricsCounters collects per-chain counters and ensemble
	// aggregates.
	MetricsCounters = core.MetricsCounters
	// MetricsKernels additionally times every phase/kernel (host wall
	// clock plus simulated device seconds on the GPU engine).
	MetricsKernels = core.MetricsKernels
)

// Metrics is the instrumentation snapshot attached to Result.Metrics
// when a solve runs with Options.Metrics above MetricsOff.
type Metrics = core.Metrics

// PhaseMetric is one phase's accounting within Metrics.
type PhaseMetric = core.PhaseMetric

// Snapshot is one best-so-far progress report from a running solve.
type Snapshot = core.Snapshot

// ProgressFunc receives best-so-far snapshots during a solve (emitted on
// every ensemble-best improvement plus once before returning).
type ProgressFunc = core.ProgressFunc

// BatchEvaluator scores batches of candidate sequences against one
// instance through the structure-of-arrays batch kernels, with costs
// bit-identical to Cost on each row. It carries scratch buffers and is
// not safe for concurrent use; create one per goroutine (the SoA
// snapshot behind it can be shared via the internal/core API).
type BatchEvaluator = core.BatchEvaluator

// NewBatchEvaluator snapshots the instance into structure-of-arrays form
// and returns a batch evaluator for it — the zero-alloc way to score
// many candidate sequences (e.g. a population per generation) without
// going through a full Solve.
func NewBatchEvaluator(in *Instance) *BatchEvaluator { return core.NewBatchEvaluator(in) }

// NewCDDInstance builds a validated CDD instance from parallel slices of
// processing times and earliness/tardiness penalties.
func NewCDDInstance(name string, p, alpha, beta []int, d int64) (*Instance, error) {
	return problem.NewCDD(name, p, alpha, beta, d)
}

// NewUCDDCPInstance builds a validated UCDDCP instance; m holds the
// minimum processing times and gamma the compression penalties, and the
// due date must satisfy d ≥ Σp (the unrestricted condition).
func NewUCDDCPInstance(name string, p, m, alpha, beta, gamma []int, d int64) (*Instance, error) {
	return problem.NewUCDDCP(name, p, m, alpha, beta, gamma, d)
}

// NewEarlyWorkInstance builds a validated m-machine early-work instance
// from processing times and a common due date.
func NewEarlyWorkInstance(name string, p []int, machines int, d int64) (*Instance, error) {
	return problem.NewEarlyWork(name, p, machines, d)
}

// PaperExample returns the worked 5-job example of the paper's Table I
// (optimal penalty 81 for CDD with d = 16, and 77 for UCDDCP with d = 22,
// both under the identity sequence).
func PaperExample(kind Kind) *Instance { return problem.PaperExample(kind) }

// GenerateCDDBenchmark deterministically generates the OR-library-style
// CDD benchmark for one job size: `records` records × the four
// restrictive due-date factors h ∈ {0.2, 0.4, 0.6, 0.8}. The paper's
// configuration is records = 10 (40 instances per size).
func GenerateCDDBenchmark(size, records int, seed uint64) ([]*Instance, error) {
	return orlib.BenchmarkCDD(size, records, seed)
}

// GenerateUCDDCPBenchmark generates the controllable benchmark for one
// job size (`records` unrestricted instances).
func GenerateUCDDCPBenchmark(size, records int, seed uint64) ([]*Instance, error) {
	return orlib.BenchmarkUCDDCP(size, records, seed)
}

// GenerateEarlyWorkBenchmark generates the parallel-machine early-work
// benchmark for one job size and machine count: `records` records × the
// four restrictive h factors, with the per-machine due date
// d = max(1, ⌊h·Σp/m⌋).
func GenerateEarlyWorkBenchmark(size, machines, records int, seed uint64) ([]*Instance, error) {
	return orlib.BenchmarkEarlyWork(size, machines, records, seed)
}
