// Quickstart: build a small Common Due-Date instance, solve it with the
// paper's default configuration (GPU-simulated asynchronous parallel SA),
// and print the resulting schedule.
package main

import (
	"fmt"
	"log"

	duedate "repro"
)

func main() {
	// Six jobs with processing times, earliness penalties (α) and
	// tardiness penalties (β), against a common due date of 20.
	p := []int{4, 7, 2, 5, 6, 3}
	alpha := []int{3, 1, 6, 2, 4, 5}
	beta := []int{5, 2, 3, 7, 1, 4}
	in, err := duedate.NewCDDInstance("quickstart", p, alpha, beta, 20)
	if err != nil {
		log.Fatal(err)
	}

	// Solve with the two-layered hybrid: parallel SA searches sequences,
	// the exact O(n) algorithm times each one optimally. Options{} uses
	// the paper's defaults (4×192 threads, 1000 iterations); we shrink
	// the ensemble so the example runs instantly.
	res, err := duedate.Solve(in, duedate.Options{
		Grid: 1, Block: 32, Iterations: 300, TempSamples: 500,
	})
	if err != nil {
		log.Fatal(err)
	}

	sched := res.Schedule(in)
	fmt.Printf("best penalty: %d\n", res.BestCost)
	fmt.Printf("sequence:     %v (0-based job ids)\n", res.BestSeq)
	fmt.Printf("first start:  t=%d\n", sched.Start)
	fmt.Printf("gantt:        %s\n", sched.Gantt(in))
	fmt.Printf("evaluations:  %d across the ensemble\n", res.Evaluations)
	fmt.Printf("device time:  %.4f s (simulated GT 560M)\n", res.SimSeconds)

	// Layer two can also be used alone: optimally time any fixed
	// sequence.
	_, identityCost, err := duedate.OptimizeSequence(in, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identity sequence would cost %d (%.1f%% worse)\n",
		identityCost, 100*float64(identityCost-res.BestCost)/float64(res.BestCost))
}
