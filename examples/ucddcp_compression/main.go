// ucddcp_compression walks through the paper's worked UCDDCP example
// (Section IV, Table I, Figures 4–6): it times the identity sequence
// optimally for the plain CDD objective, then compresses jobs toward the
// due date step by step, reproducing the penalties 81 → 80 → 77 the paper
// reports, and finally cross-checks with the library's one-call solver.
package main

import (
	"fmt"
	"log"

	duedate "repro"
)

func main() {
	in := duedate.PaperExample(duedate.UCDDCP)
	seq := []int{0, 1, 2, 3, 4}

	fmt.Printf("Table I data, d=%d (unrestricted: ΣP=%d)\n", in.D, in.SumP())
	fmt.Printf("%-4s %3s %3s %3s %3s %3s\n", "job", "P", "M", "α", "β", "γ")
	for i, j := range in.Jobs {
		fmt.Printf("J%-3d %3d %3d %3d %3d %3d\n", i+1, j.P, j.M, j.Alpha, j.Beta, j.Gamma)
	}

	// Step 1 — CDD phase: optimally time the uncompressed sequence.
	// Figure 4: job 2 completes at the due date, penalty 81.
	uncompressed := duedate.Schedule{Seq: seq, Start: 11}
	fmt.Printf("\nCDD-optimal timing (no compression): cost=%d\n", uncompressed.Cost(in))
	fmt.Println("  " + uncompressed.Gantt(in))

	// Step 2 — compress job 5 (tardy, β=2 > γ=1): Figure 5, −1.
	step1 := duedate.Schedule{Seq: seq, Start: 11, X: []int64{0, 0, 0, 0, 1}}
	fmt.Printf("compress J5 to its minimum:          cost=%d\n", step1.Cost(in))

	// Step 3 — compress job 4 (β4+β5=5 > γ4=2): Figure 6, −3.
	step2 := duedate.Schedule{Seq: seq, Start: 11, X: []int64{0, 0, 0, 1, 1}}
	fmt.Printf("compress J4 as well:                 cost=%d\n", step2.Cost(in))
	fmt.Println("  " + step2.Gantt(in))

	// The O(n) algorithm reaches the same optimum in one call.
	sched, cost, err := duedate.OptimizeSequence(in, seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nO(n) linear algorithm for this sequence: cost=%d (paper: 77)\n", cost)
	for job, x := range sched.X {
		if x > 0 {
			fmt.Printf("  J%d compressed by %d\n", job+1, x)
		}
	}

	// And the full two-layered solver confirms no better sequence exists
	// for this tiny instance.
	res, err := duedate.Solve(in, duedate.Options{
		Grid: 1, Block: 32, Iterations: 400, TempSamples: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest over all sequences (parallel SA): cost=%d, sequence=%v\n",
		res.BestCost, res.BestSeq)
}
