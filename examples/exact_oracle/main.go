// exact_oracle shows the verification workflow the library's tests use:
// on a small unrestricted instance, compute the provably exact optimum
// (V-shape subset enumeration), then measure the constructive heuristic,
// a single SA chain and the parallel GPU ensemble against it, and confirm
// the Section III LP agrees with the O(n) evaluation of the optimal
// sequence.
package main

import (
	"fmt"
	"log"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/lpref"
	"repro/internal/orlib"
)

func main() {
	// A 14-job unrestricted CDD instance: far beyond brute force (14! ≈
	// 87 billion sequences) but exactly solvable by partition enumeration
	// (2^14 = 16384 candidates).
	raws := orlib.GenerateCDD(14, 1, 2016)
	in, err := orlib.CDDInstance(raws[0], 14, 0, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	in.D = in.SumP() + 10 // unrestricted

	opt, err := exact.Solve(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum      %6d   (%d partitions enumerated)\n", opt.Cost, opt.Nodes)

	heurSeq, heurCost := heuristic.Construct(in)
	fmt.Printf("V-shape heuristic  %6d   (%+.1f%%)\n", heurCost, gap(heurCost, opt.Cost))
	_ = heurSeq

	gpu, err := duedate.Solve(in, duedate.Options{
		Iterations: 500, Grid: 2, Block: 32, TempSamples: 500, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel GPU SA    %6d   (%+.1f%%)\n", gpu.BestCost, gap(gpu.BestCost, opt.Cost))

	// The LP of Section III must agree with the O(n) algorithm on the
	// optimal sequence.
	lp, err := lpref.Solve(in, opt.Seq)
	if err != nil {
		log.Fatal(err)
	}
	eval := core.NewEvaluator(in)
	fmt.Printf("LP on optimal seq  %6d   (O(n) algorithm: %d, %d simplex pivots)\n",
		lp.RoundedCost(), eval.Cost(opt.Seq), lp.Iterations)

	if gpu.BestCost == opt.Cost {
		fmt.Println("\nthe parallel ensemble found the provably optimal schedule ✓")
	} else {
		fmt.Printf("\nensemble is %.2f%% from optimal — increase iterations/threads to close\n",
			gap(gpu.BestCost, opt.Cost))
	}
}

func gap(z, opt int64) float64 { return 100 * float64(z-opt) / float64(opt) }
