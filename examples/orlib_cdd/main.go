// orlib_cdd generates a slice of the OR-library CDD benchmark and
// compares the paper's four parallel algorithms (SA and DPSO at two
// iteration budgets) on it — a miniature of Table II that shows the
// paper's central quality finding: SA stays near the reference while
// DPSO's deviation grows with the instance size.
package main

import (
	"fmt"
	"log"

	duedate "repro"
)

const records = 1 // ×4 due-date factors = 4 instances per size

func main() {
	sizes := []int{10, 50, 150}
	algos := []struct {
		name  string
		algo  duedate.Algorithm
		iters int
	}{
		{"SA_250", duedate.SA, 250},
		{"SA_1250", duedate.SA, 1250},
		{"DPSO_250", duedate.DPSO, 250},
		{"DPSO_1250", duedate.DPSO, 1250},
	}

	fmt.Printf("%6s", "jobs")
	for _, a := range algos {
		fmt.Printf(" %12s", a.name)
	}
	fmt.Println("   (mean %Δ vs serial CPU SA reference)")

	for _, size := range sizes {
		instances, err := duedate.GenerateCDDBenchmark(size, records, 2016)
		if err != nil {
			log.Fatal(err)
		}
		sums := make([]float64, len(algos))
		for _, in := range instances {
			// The reference: a long serial CPU SA run (the stand-in for
			// the best known solutions of Lässig et al.).
			ref, err := duedate.Solve(in, duedate.Options{
				Engine: duedate.EngineCPUSerial,
				Grid:   1, Block: 4, Iterations: 1250, TempSamples: 300, Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			for i, a := range algos {
				res, err := duedate.Solve(in, duedate.Options{
					Algorithm: a.algo,
					Engine:    duedate.EngineGPU,
					Grid:      2, Block: 32,
					Iterations:  a.iters,
					TempSamples: 300,
					Seed:        11,
				})
				if err != nil {
					log.Fatal(err)
				}
				sums[i] += 100 * float64(res.BestCost-ref.BestCost) / float64(ref.BestCost)
			}
		}
		fmt.Printf("%6d", size)
		for i := range algos {
			fmt.Printf(" %12.3f", sums[i]/float64(len(instances)))
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (Table II): the high-budget SA column stays near the")
	fmt.Println("reference at every size, and the DPSO−SA gap widens as jobs grow.")
}
