// gpu_pipeline drives the simulated CUDA device directly, showing the
// machinery under the paper's Section VI: the device spec, the
// host↔device transfers of Figure 9, the four kernels of Figure 10 with
// shared-memory staging and the atomic-min reduction, and the profiler
// report (the stand-in for the Nvidia CUDA profiler the paper used to
// tune its kernels).
package main

import (
	"fmt"
	"log"

	duedate "repro"
	"repro/internal/cudasim"
	"repro/internal/parallel"
	"repro/internal/sa"
)

func main() {
	dev := cudasim.NewDevice(cudasim.GT560M())
	spec := dev.Spec()
	fmt.Printf("device: %s\n", spec.Name)
	fmt.Printf("  %d SMs × %d cores, warp %d, ≤%d threads/block, %.0f MHz, %d KiB shared/block\n\n",
		spec.SMs, spec.CoresPerSM, spec.WarpSize, spec.MaxThreadsPerBlock,
		spec.ClockMHz, spec.SharedMemPerBlock/1024)

	// A direct kernel: block-wide shared-memory staging behind a real
	// __syncthreads barrier, then an atomic-min reduction — the exact
	// pattern of the paper's fitness + reduction kernels.
	data := make([]int64, 256)
	for i := range data {
		data[i] = int64((i*2654435761)%10007 + 1)
	}
	src := cudasim.NewBufferFrom(dev, data)
	best := cudasim.NewBufferFrom(dev, []int64{1 << 62})
	err := dev.Launch(cudasim.LaunchConfig{
		Name:        "demo",
		Grid:        cudasim.Dim(2),
		Block:       cudasim.Dim(128),
		Cooperative: true,
	}, func(c *cudasim.Ctx) {
		sh := c.SharedInt64(0, 128)
		tib := c.ThreadInBlock()
		sh[tib] = src.Load(c, c.GlobalThreadID())
		c.ChargeShared(1)
		c.SyncThreads()
		// Tree reduction in shared memory, then one atomic per block.
		for stride := 64; stride > 0; stride /= 2 {
			if tib < stride && sh[tib+stride] < sh[tib] {
				sh[tib] = sh[tib+stride]
			}
			c.ChargeShared(2)
			c.SyncThreads()
		}
		if tib == 0 {
			cudasim.AtomicMinInt64(c, best, 0, sh[0])
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	out := make([]int64, 1)
	best.CopyToHost(out)
	fmt.Printf("shared-memory tree reduction + atomic min over 256 values: %d\n\n", out[0])

	// The full four-kernel SA pipeline on a benchmark instance, with the
	// profiler collecting per-kernel statistics.
	instances, err := duedate.GenerateCDDBenchmark(100, 1, 2016)
	if err != nil {
		log.Fatal(err)
	}
	in := instances[2] // h = 0.6
	res := (&parallel.GPUSA{
		Inst: in,
		SA:   sa.Config{Iterations: 200, TempSamples: 500},
		Grid: 2, Block: 96,
		Seed: 1,
		Dev:  dev,
	}).MustSolve()
	fmt.Printf("pipeline run on %s: best=%d, %d evaluations, %.4f s simulated, %v wall\n\n",
		in.Name, res.BestCost, res.Evaluations, res.SimSeconds, res.Elapsed)

	fmt.Println("profiler report (cf. the Nvidia CUDA profiler of Section I):")
	fmt.Print(dev.Profiler().Report())
}
